// Deterministic random number generation for idlewave.
//
// Every stochastic element of a simulation (noise samples, random delay
// lengths, start-skew jitter) draws from a Rng whose seed is derived from
// (master_seed, rank, stream purpose) via SplitMix64 mixing. Two runs with
// the same master seed therefore produce bit-identical traces, and adding a
// new consumer of randomness never perturbs existing streams.
#pragma once

#include <cstdint>

#include "support/time.hpp"

namespace iw {

/// xoshiro256** (Blackman/Vigna) seeded through SplitMix64. Small, fast,
/// and with 256-bit state more than adequate for the ~1e8 samples a large
/// experiment sweep draws.
class Rng {
 public:
  /// Seeds the generator from an arbitrary 64-bit value; all-zero internal
  /// state is impossible by construction of the SplitMix64 expansion.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent stream for (rank, purpose). Streams with
  /// different (rank, purpose) pairs are statistically independent.
  [[nodiscard]] static Rng for_stream(std::uint64_t master_seed,
                                      std::uint64_t rank,
                                      std::uint64_t purpose);

  /// Derives the `index`-th child stream from this generator's *current*
  /// state without advancing it. The result depends only on (state, index),
  /// never on call order, so a sweep campaign can hand point `i` the stream
  /// `campaign_rng.fork(i)` from any worker thread and still reproduce the
  /// single-threaded run exactly. Child streams with different indices are
  /// statistically independent of each other and of the parent.
  [[nodiscard]] Rng fork(std::uint64_t index) const;

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling so
  /// the distribution is exactly uniform.
  std::uint64_t uniform_below(std::uint64_t n);

  /// Exponentially distributed value with the given mean (paper Eq. 3 uses
  /// the exponential distribution for injected fine-grained noise).
  double exponential(double mean);

  /// Standard normal via Box–Muller (used by gamma sampling).
  double normal();

  /// Gamma-distributed value with shape k > 0 and given mean, via
  /// Marsaglia–Tsang. Used for the noise-shape ablation study.
  double gamma(double shape, double mean);

  /// Exponentially distributed Duration with the given mean duration,
  /// truncated at zero (mean.ns() >= 0 required).
  Duration exponential_duration(Duration mean);

 private:
  std::uint64_t s_[4];
};

}  // namespace iw
