// Local-socket plumbing for the campaign service: RAII fds, AF_UNIX
// listen/connect, line framing.
//
// The idlewaved protocol is line-delimited JSON over a Unix-domain stream
// socket; everything transport-shaped about that lives here so the server,
// the client and the tests share one implementation. Sends use MSG_NOSIGNAL
// (a peer that vanished mid-stream must surface as an error return, never
// as SIGPIPE killing the daemon), and the LineBuffer tolerates arbitrary
// read fragmentation.
#pragma once

#include <cstddef>
#include <string>

namespace iw {

/// Move-only owner of a file descriptor; closes on destruction.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  ScopedFd& operator=(ScopedFd&& other) noexcept;
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ~ScopedFd() { reset(); }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Closes the current fd (if any) and adopts `fd`.
  void reset(int fd = -1);
  /// Releases ownership without closing.
  int release();

 private:
  int fd_ = -1;
};

/// Binds and listens on an AF_UNIX stream socket at `path`, unlinking a
/// stale socket file first. Throws std::runtime_error (with errno text) on
/// failure, including a path longer than sockaddr_un::sun_path allows.
[[nodiscard]] ScopedFd unix_listen(const std::string& path, int backlog = 16);

/// Connects to the AF_UNIX stream socket at `path`; throws on failure.
[[nodiscard]] ScopedFd unix_connect(const std::string& path);

/// Writes all of `data`, retrying short writes, with MSG_NOSIGNAL. Returns
/// false on any error (the peer is gone; callers treat it as a disconnect).
[[nodiscard]] bool send_all(int fd, const char* data, std::size_t size);

/// send_all of `line` plus the terminating '\n'.
[[nodiscard]] bool send_line(int fd, const std::string& line);

/// Reassembles '\n'-terminated lines from arbitrary read fragments.
class LineBuffer {
 public:
  void feed(const char* data, std::size_t size) { buf_.append(data, size); }

  /// Extracts the next complete line (without its '\n') into `line`.
  /// Returns false when no complete line is buffered yet.
  bool next_line(std::string& line);

  /// Bytes buffered but not yet terminated by '\n'.
  [[nodiscard]] std::size_t pending_bytes() const { return buf_.size(); }

 private:
  std::string buf_;
};

}  // namespace iw
