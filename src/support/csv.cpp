#include "support/csv.hpp"

#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace iw {
namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string quote(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter() = default;

CsvWriter::CsvWriter(const std::string& path)
    : out_(std::make_unique<std::ofstream>(path)) {
  if (!*out_) throw std::runtime_error("cannot open CSV output: " + path);
}

void CsvWriter::header(std::initializer_list<std::string> names) {
  emit(std::vector<std::string>(names));
}

void CsvWriter::header(const std::vector<std::string>& names) { emit(names); }

void CsvWriter::row(std::initializer_list<std::string> fields) {
  emit(std::vector<std::string>(fields));
}

void CsvWriter::row(const std::vector<std::string>& fields) { emit(fields); }

void CsvWriter::emit(const std::vector<std::string>& fields) {
  if (!out_) return;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << quote(fields[i]);
  }
  *out_ << '\n';
}

std::string csv_num(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

JsonlWriter::JsonlWriter() = default;

JsonlWriter::JsonlWriter(const std::string& path)
    : out_(std::make_unique<std::ofstream>(path)) {
  if (!*out_) throw std::runtime_error("cannot open JSONL output: " + path);
}

void JsonlWriter::object(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  if (!out_) return;
  *out_ << json_object(fields) << '\n';
}

void JsonlWriter::raw_line(const std::string& json) {
  if (!out_) return;
  *out_ << json << '\n';
}

std::string json_object(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string out = "{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ',';
    out += json_str(fields[i].first);
    out += ':';
    out += fields[i].second;
  }
  out += '}';
  return out;
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace iw
