// Streaming FNV-1a 64-bit hashing for content addressing.
//
// The campaign service keys its point cache by a canonical serialization of
// (expanded spec point, seed, record-schema version); the store itself is
// keyed by the full canonical string (collision-free by construction), and
// this hash is the short content address used for logging, status output
// and cheap prefilters. FNV-1a is not cryptographic — nothing here defends
// against adversarial collisions, only against accidental ones, and the
// exact-string store behind it makes even those harmless.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace iw {

class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  Fnv1a64& update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= kPrime;
    }
    return *this;
  }

  Fnv1a64& update(const std::string& s) { return update(s.data(), s.size()); }

  [[nodiscard]] std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot convenience.
[[nodiscard]] inline std::uint64_t fnv1a64(const std::string& s) {
  return Fnv1a64{}.update(s).digest();
}

/// The 16-hex-digit content address the service prints for a hash.
[[nodiscard]] inline std::string hash_hex(std::uint64_t h) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[h & 0xF];
    h >>= 4;
  }
  return out;
}

}  // namespace iw
