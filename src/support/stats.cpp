#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace iw {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double median(std::span<const double> values) {
  return percentile(values, 50.0);
}

double percentile(std::span<const double> values, double p) {
  IW_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must lie in [0, 100]");
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.mean = mean(values);
  s.median = median(values);
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  if (values.size() > 1) {
    double acc = 0.0;
    for (double v : values) acc += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(acc / static_cast<double>(values.size() - 1));
  }
  return s;
}

LineFit fit_line(std::span<const double> x, std::span<const double> y) {
  IW_REQUIRE(x.size() == y.size(), "fit_line needs equally sized inputs");
  LineFit fit;
  fit.n = x.size();
  if (fit.n < 2) return fit;
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;  // vertical line: report zero fit
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  // Residual sum of squares of the OLS solution; clamped because the
  // analytic identity syy - slope*sxy can go epsilon-negative in floating
  // point for perfectly collinear inputs.
  const double rss = std::max(0.0, syy - fit.slope * sxy);
  fit.rmse = std::sqrt(rss / static_cast<double>(fit.n));
  fit.valid = true;
  return fit;
}

}  // namespace iw
