#include "support/rng.hpp"

#include <cmath>

#include "support/error.hpp"

namespace iw {
namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::for_stream(std::uint64_t master_seed, std::uint64_t rank,
                    std::uint64_t purpose) {
  // Mix the three identifiers through SplitMix64 sequentially; the avalanche
  // behaviour of the finalizer decorrelates neighboring (rank, purpose) pairs.
  std::uint64_t sm = master_seed;
  std::uint64_t a = splitmix64(sm);
  sm ^= 0x632BE59BD9B4E019ULL + rank;
  std::uint64_t b = splitmix64(sm);
  sm ^= 0x9E3779B97F4A7C15ULL * (purpose + 1);
  std::uint64_t c = splitmix64(sm);
  return Rng{a ^ rotl(b, 17) ^ rotl(c, 41)};
}

Rng Rng::fork(std::uint64_t index) const {
  // Same construction as for_stream: fold the parent state and the child
  // index through SplitMix64 so neighboring indices land in decorrelated
  // regions of the seed space.
  std::uint64_t sm = s_[0];
  const std::uint64_t a = splitmix64(sm);
  sm ^= rotl(s_[1], 29) + 0x632BE59BD9B4E019ULL * (index + 1);
  const std::uint64_t b = splitmix64(sm);
  sm ^= rotl(s_[2] ^ s_[3], 47) + index;
  const std::uint64_t c = splitmix64(sm);
  return Rng{a ^ rotl(b, 17) ^ rotl(c, 41)};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  IW_REQUIRE(lo <= hi, "uniform range must be ordered");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_below(std::uint64_t n) {
  IW_REQUIRE(n > 0, "uniform_below requires n > 0");
  // Lemire-style rejection: draw until the value falls inside the largest
  // multiple of n representable in 64 bits.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::exponential(double mean) {
  IW_REQUIRE(mean >= 0.0, "exponential mean must be non-negative");
  if (mean == 0.0) return 0.0;
  // Inversion; 1-u in (0,1] avoids log(0).
  return -mean * std::log(1.0 - uniform());
}

double Rng::normal() {
  // Box–Muller, discarding the second variate for simplicity; callers are
  // not throughput-critical.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::gamma(double shape, double mean) {
  IW_REQUIRE(shape > 0.0, "gamma shape must be positive");
  IW_REQUIRE(mean >= 0.0, "gamma mean must be non-negative");
  if (mean == 0.0) return 0.0;
  const double scale = mean / shape;
  // Marsaglia–Tsang; boost shape < 1 with the standard u^(1/shape) trick.
  double k = shape;
  double boost = 1.0;
  if (k < 1.0) {
    boost = std::pow(uniform(), 1.0 / k);
    k += 1.0;
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = 1.0 - uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return boost * d * v * scale;
  }
}

Duration Rng::exponential_duration(Duration mean) {
  IW_REQUIRE(mean.ns() >= 0, "mean duration must be non-negative");
  const double ns = exponential(static_cast<double>(mean.ns()));
  return Duration{static_cast<std::int64_t>(ns + 0.5)};
}

}  // namespace iw
