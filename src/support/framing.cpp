#include "support/framing.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace iw {
namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long (max " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             " bytes): " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

ScopedFd& ScopedFd::operator=(ScopedFd&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

void ScopedFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

int ScopedFd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

ScopedFd unix_listen(const std::string& path, int backlog) {
  const sockaddr_un addr = unix_address(path);
  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket");
  // A previous daemon's socket file would make bind fail with EADDRINUSE;
  // a *live* daemon still holding it is indistinguishable here, so the
  // unlink is the documented "one daemon per path" contract, not a lock.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    fail_errno("bind " + path);
  if (::listen(fd.get(), backlog) != 0) fail_errno("listen " + path);
  return fd;
}

ScopedFd unix_connect(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    fail_errno("connect " + path);
  return fd;
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_line(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  return send_all(fd, framed.data(), framed.size());
}

bool LineBuffer::next_line(std::string& line) {
  const std::size_t pos = buf_.find('\n');
  if (pos == std::string::npos) return false;
  line.assign(buf_, 0, pos);
  buf_.erase(0, pos + 1);
  return true;
}

}  // namespace iw
