// A pooled FIFO ring buffer with ordered middle erase.
//
// The transport's per-endpoint queues (posted receives, unexpected eager
// arrivals, unexpected RTS records) are tiny in steady state but churn on
// every message. std::deque pays for that churn with block allocations and
// poor locality; RingQueue keeps one contiguous power-of-two buffer that
// grows geometrically and is then reused for the rest of the simulation —
// and, via clear(), across simulation runs. Matching scans index the queue
// logically (operator[]), and erase(i) preserves FIFO order by shifting the
// shorter side, which is O(1) in the dominant match-at-the-front case.
//
// grows() counts buffer reallocations so callers can assert the
// steady-state zero-allocation property (see Transport::pool_stats()).
//
// Audit builds (support/check.hpp) add three defenses, all compiled out of
// Release:
//   * a member canary bracketing the bookkeeping fields — an overwrite
//     through a stale RingQueue* or a neighboring-object overflow trips the
//     next operation;
//   * structural checks (power-of-two capacity, head within the buffer,
//     size within capacity) via audit(), run on every mutation;
//   * poisoning: every vacated slot is overwritten with a
//     default-constructed T, so a read of logically-dead state (stale index
//     kept across a pop, reuse after clear()) yields loud zeros instead of
//     plausible stale records — and drops any resources the element held.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace iw {

template <typename T>
class RingQueue {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  /// Number of buffer growths since construction (heap-allocation events).
  [[nodiscard]] std::uint64_t grows() const noexcept { return grows_; }

  /// Element at logical position `i` (0 = oldest). Not noexcept: the
  /// audit-build range check throws (and must be catchable by tests).
  [[nodiscard]] T& operator[](std::size_t i) {
    IW_ASSERT(i < size_, "RingQueue index out of range");
    return buf_[slot(i)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    IW_ASSERT(i < size_, "RingQueue index out of range");
    return buf_[slot(i)];
  }

  [[nodiscard]] T& front() {
    IW_ASSERT(size_ > 0, "front() on an empty RingQueue");
    return buf_[head_];
  }

  void push_back(T value) {
    IW_AUDIT(audit());
    if (size_ == buf_.size()) grow();
    buf_[slot(size_)] = std::move(value);
    ++size_;
  }

  void pop_front() {
    IW_AUDIT(audit());
    IW_ASSERT(size_ > 0, "pop_front() on an empty RingQueue");
    IW_AUDIT(buf_[head_] = T{});  // poison the vacated slot
    head_ = next(head_);
    --size_;
  }

  /// Removes the element at logical position `i`, preserving the relative
  /// order of everything else. Shifts whichever side is shorter.
  void erase(std::size_t i) {
    IW_AUDIT(audit());
    IW_ASSERT(i < size_, "erase() out of range");
    if (i < size_ - i - 1) {
      // Shift the front segment toward the erased hole, advance the head.
      for (std::size_t j = i; j > 0; --j) buf_[slot(j)] = std::move(buf_[slot(j - 1)]);
      IW_AUDIT(buf_[head_] = T{});  // poison the vacated slot
      head_ = next(head_);
    } else {
      for (std::size_t j = i; j + 1 < size_; ++j)
        buf_[slot(j)] = std::move(buf_[slot(j + 1)]);
      IW_AUDIT(buf_[slot(size_ - 1)] = T{});  // poison the vacated slot
    }
    --size_;
  }

  /// Empties the queue; the buffer (and its capacity) is retained.
  void clear() noexcept {
    IW_AUDIT(audit());
    IW_AUDIT(for (std::size_t i = 0; i < size_; ++i) buf_[slot(i)] = T{});
    head_ = 0;
    size_ = 0;
  }

  /// Structural self-check (audit builds only; a no-op otherwise). Every
  /// mutating operation runs it, and tests may call it directly.
  void audit() const {
#if IW_AUDIT_ENABLED
    IW_ASSERT(canary_ == kCanary,
              "RingQueue canary clobbered (overwrite through stale pointer?)");
    IW_ASSERT(buf_.empty() || (buf_.size() & (buf_.size() - 1)) == 0,
              "RingQueue capacity is not a power of two");
    IW_ASSERT(size_ <= buf_.size(), "RingQueue size exceeds capacity");
    IW_ASSERT(buf_.empty() ? head_ == 0 : head_ < buf_.size(),
              "RingQueue head outside the buffer");
#endif
  }

 private:
  [[nodiscard]] std::size_t slot(std::size_t i) const noexcept {
    return (head_ + i) & (buf_.size() - 1);
  }
  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return (i + 1) & (buf_.size() - 1);
  }

  void grow() {
    const std::size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> bigger(new_cap);
    for (std::size_t i = 0; i < size_; ++i) bigger[i] = std::move(buf_[slot(i)]);
    buf_ = std::move(bigger);
    head_ = 0;
    ++grows_;
  }

#if IW_AUDIT_ENABLED
  static constexpr std::uint64_t kCanary = 0xA11D17C4'1B5EE7EDull;
  std::uint64_t canary_ = kCanary;
#endif
  std::vector<T> buf_;  ///< power-of-two sized (or empty)
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t grows_ = 0;
};

}  // namespace iw
