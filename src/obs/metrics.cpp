#include "obs/metrics.hpp"

#include <string>

#include "memory/bandwidth_domain.hpp"
#include "mpi/transport.hpp"
#include "obs/tracer.hpp"
#include "sim/engine.hpp"
#include "support/csv.hpp"

namespace iw::obs {

namespace {

struct MetricInfo {
  const char* name;
  MetricKind kind;
};

constexpr MetricInfo kMetricTable[kMetricCount] = {
#define IW_METRIC_INFO(id, name, kind) {name, MetricKind::kind},
    IW_METRICS(IW_METRIC_INFO)
#undef IW_METRIC_INFO
};

}  // namespace

const char* metric_name(MetricId id) noexcept {
  return kMetricTable[static_cast<std::size_t>(id)].name;
}

MetricKind metric_kind(MetricId id) noexcept {
  return kMetricTable[static_cast<std::size_t>(id)].kind;
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot d;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    if (kMetricTable[i].kind == MetricKind::counter) {
      d.counters[i] =
          counters[i] >= earlier.counters[i] ? counters[i] - earlier.counters[i]
                                             : 0;
    } else {
      d.gauges[i] = gauges[i];
    }
  }
  return d;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    if (i != 0) out += ",";
    out += json_str(kMetricTable[i].name);
    out += ":";
    if (kMetricTable[i].kind == MetricKind::counter) {
      out += std::to_string(counters[i]);
    } else {
      out += csv_num(gauges[i]);
    }
  }
  out += "}";
  return out;
}

void MetricsRegistry::publish(const sim::Engine& engine) {
  add(MetricId::engine_events_processed, engine.events_processed());
  add(MetricId::engine_batches, engine.batches());
  set_max(MetricId::engine_calendar_peak,
          static_cast<double>(engine.peak_events_pending()));
}

void MetricsRegistry::publish(const mpi::Transport& transport) {
  // Stats: per-run protocol counters (cleared by reconfigure(), so one
  // publish per run adds exactly that run's traffic). The stats-in-registry
  // lint rule checks that every Transport::Stats / PoolStats field appears
  // here — extend both when extending either.
  const mpi::Transport::Stats& s = transport.stats();
  add(MetricId::transport_eager_sends, s.eager_sends);
  add(MetricId::transport_rendezvous_sends, s.rendezvous_sends);
  add(MetricId::transport_eager_fallbacks, s.eager_fallbacks);
  add(MetricId::transport_credit_stalls, s.credit_stalls);
  add(MetricId::transport_nic_backlogged, s.nic_backlogged);
  add(MetricId::transport_deferred_pushes, s.deferred_pushes);
  add(MetricId::transport_rdma_puts, s.rdma_puts);
  add(MetricId::transport_rdma_gets, s.rdma_gets);
  add(MetricId::transport_unexpected_eager, s.unexpected_eager);
  add(MetricId::transport_unexpected_rts, s.unexpected_rts);
  // PoolStats: pool levels survive reconfigure() (allocations is the
  // lifetime pool-growth total), so they land as gauges, peaks combining
  // across workers via set_max.
  const mpi::Transport::PoolStats p = transport.pool_stats();
  set_max(MetricId::pool_allocations, static_cast<double>(p.allocations));
  set_max(MetricId::pool_rdv_slab_capacity,
          static_cast<double>(p.rdv_slab_capacity));
  set_max(MetricId::pool_rdv_in_flight, static_cast<double>(p.rdv_in_flight));
  set_max(MetricId::pool_nic_backlog_depth,
          static_cast<double>(p.nic_backlog_depth));
  set_max(MetricId::pool_nic_inflight, static_cast<double>(p.nic_inflight));
  // Flow-control shadow levels (nonzero only mid-run or after a stall).
  set_max(MetricId::transport_credits_outstanding,
          static_cast<double>(transport.credits_outstanding()));
  set_max(MetricId::transport_eager_backlog_bytes,
          static_cast<double>(transport.eager_backlog_bytes()));
}

void MetricsRegistry::publish(const memory::BandwidthDomain& domain) {
  add(MetricId::memory_jobs_submitted, domain.jobs_submitted());
  add(MetricId::memory_bytes_submitted, domain.bytes_submitted());
}

void MetricsRegistry::publish(const Tracer& tracer) {
  set_max(MetricId::tracer_records, static_cast<double>(tracer.size()));
  set_max(MetricId::tracer_dropped, static_cast<double>(tracer.dropped()));
}

}  // namespace iw::obs
