#include "obs/tracer.hpp"

#include "support/error.hpp"

namespace iw::obs {

const char* to_string(TraceEvent ev) noexcept {
  switch (ev) {
    case TraceEvent::kRunBegin: return "run_begin";
    case TraceEvent::kRunEnd: return "run_end";
    case TraceEvent::kPostSend: return "post_send";
    case TraceEvent::kPostRecv: return "post_recv";
    case TraceEvent::kMatch: return "match";
    case TraceEvent::kEagerSend: return "eager_send";
    case TraceEvent::kEagerRecv: return "eager_recv";
    case TraceEvent::kUnexpectedEager: return "unexpected_eager";
    case TraceEvent::kRtsSend: return "rts_send";
    case TraceEvent::kRtsRecv: return "rts_recv";
    case TraceEvent::kUnexpectedRts: return "unexpected_rts";
    case TraceEvent::kCtsSend: return "cts_send";
    case TraceEvent::kCtsRecv: return "cts_recv";
    case TraceEvent::kPushSend: return "push_send";
    case TraceEvent::kPushRecv: return "push_recv";
    case TraceEvent::kPutSend: return "put_send";
    case TraceEvent::kGetSend: return "get_send";
    case TraceEvent::kGetRecv: return "get_recv";
    case TraceEvent::kFinSend: return "fin_send";
    case TraceEvent::kFinRecv: return "fin_recv";
    case TraceEvent::kNicPark: return "nic_park";
    case TraceEvent::kNicDrain: return "nic_drain";
    case TraceEvent::kCreditCharge: return "credit_charge";
    case TraceEvent::kCreditReturn: return "credit_return";
    case TraceEvent::kCreditDemotion: return "credit_demotion";
    case TraceEvent::kWaitBegin: return "wait_begin";
    case TraceEvent::kWaitEnd: return "wait_end";
    case TraceEvent::kCount: break;
  }
  return "unknown";
}

Tracer::Tracer(std::size_t capacity) {
  IW_REQUIRE(capacity > 0, "tracer ring capacity must be positive");
  ring_.resize(capacity);
}

void Tracer::record(SimTime t, TraceEvent ev, std::int32_t rank,
                    std::int32_t peer, std::int64_t bytes,
                    std::uint32_t slot) noexcept {
  TraceRecord& r = ring_[head_];
  r.t = t;
  r.ev = ev;
  r.rank = rank;
  r.peer = peer;
  r.bytes = bytes;
  r.slot = slot;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (size_ < ring_.size()) {
    ++size_;
  } else {
    ++dropped_;
  }
}

std::vector<TraceRecord> Tracer::drain_ordered() const {
  std::vector<TraceRecord> out;
  out.reserve(size_);
  // When the ring wrapped, the oldest record sits at head_ (the next write
  // position); otherwise the ring starts at index 0.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

}  // namespace iw::obs
