// Unified metrics registry.
//
// Every metric the instrumented layers expose is declared exactly once in
// the IW_METRICS X-macro below; the MetricId enum, the name table, and the
// kind table are all generated from it. Storage is two flat preallocated
// arrays (counters as exact uint64, gauges as double) indexed by the
// compile-time MetricId — no map lookups, no string hashing, no allocation
// after construction.
//
// Publishing is pull-shaped: the simulation layers keep their own cheap
// local counters (Transport::Stats, Engine::events_processed, the
// BandwidthDomain submit counters) exactly as before, and a harness that
// wants a unified view calls publish(layer) after (or between) runs. The
// hot paths never touch the registry.
//
// Semantics:
//   * counter — monotone totals; publish() adds, snapshot deltas subtract.
//   * gauge   — level/peak values; publish() writes (peaks via set_max so
//     multiple workers' publishes combine), snapshot deltas keep the later
//     value.
//
// Each X entry is X(id, name, kind):
//   id   — MetricId enumerator and the registry index
//   name — stable dotted export name (JSON key)
//   kind — counter | gauge
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace iw::sim {
class Engine;
}
namespace iw::mpi {
class Transport;
}
namespace iw::memory {
class BandwidthDomain;
}

#define IW_METRICS(X)                                                       \
  X(engine_events_processed, "engine.events_processed", counter)            \
  X(engine_batches, "engine.batches", counter)                              \
  X(engine_calendar_peak, "engine.calendar_peak", gauge)                    \
  X(transport_eager_sends, "transport.eager_sends", counter)                \
  X(transport_rendezvous_sends, "transport.rendezvous_sends", counter)      \
  X(transport_eager_fallbacks, "transport.eager_fallbacks", counter)        \
  X(transport_credit_stalls, "transport.credit_stalls", counter)            \
  X(transport_nic_backlogged, "transport.nic_backlogged", counter)          \
  X(transport_deferred_pushes, "transport.deferred_pushes", counter)        \
  X(transport_rdma_puts, "transport.rdma_puts", counter)                    \
  X(transport_rdma_gets, "transport.rdma_gets", counter)                    \
  X(transport_unexpected_eager, "transport.unexpected_eager", counter)      \
  X(transport_unexpected_rts, "transport.unexpected_rts", counter)          \
  X(transport_credits_outstanding, "transport.credits_outstanding", gauge)  \
  X(transport_eager_backlog_bytes, "transport.eager_backlog_bytes", gauge)  \
  X(pool_allocations, "pool.allocations", gauge)                            \
  X(pool_rdv_slab_capacity, "pool.rdv_slab_capacity", gauge)                \
  X(pool_rdv_in_flight, "pool.rdv_in_flight", gauge)                        \
  X(pool_nic_backlog_depth, "pool.nic_backlog_depth", gauge)                \
  X(pool_nic_inflight, "pool.nic_inflight", gauge)                          \
  X(memory_jobs_submitted, "memory.jobs_submitted", counter)                \
  X(memory_bytes_submitted, "memory.bytes_submitted", counter)              \
  X(sweep_points_done, "sweep.points_done", counter)                        \
  X(sweep_points_total, "sweep.points_total", gauge)                        \
  X(sweep_elapsed_seconds, "sweep.elapsed_seconds", gauge)                  \
  X(sweep_points_per_sec, "sweep.points_per_sec", gauge)                    \
  X(sweep_workers, "sweep.workers", gauge)                                  \
  X(sweep_worker_busy_seconds, "sweep.worker_busy_seconds", gauge)          \
  X(tracer_records, "tracer.records", gauge)                                \
  X(tracer_dropped, "tracer.dropped", gauge)                                \
  X(engine_ffwd_skips, "engine.ffwd_skips", counter)                        \
  X(engine_ffwd_time_skipped, "engine.ffwd_time_skipped", counter)          \
  X(mem_peak_bytes_per_rank, "mem.peak_bytes_per_rank", gauge)              \
  X(service_queue_depth, "service.queue_depth", gauge)                      \
  X(service_clients_active, "service.clients_active", gauge)                \
  X(service_points_per_sec, "service.points_per_sec", gauge)                \
  X(service_cache_hits, "service.cache_hits", counter)                      \
  X(service_cache_misses, "service.cache_misses", counter)                  \
  X(service_points_computed, "service.points_computed", counter)            \
  X(service_jobs_submitted, "service.jobs_submitted", counter)              \
  X(service_jobs_rejected, "service.jobs_rejected", counter)                \
  X(service_jobs_cancelled, "service.jobs_cancelled", counter)              \
  X(service_sched_decisions, "service.sched_decisions", counter)

namespace iw::obs {

class Tracer;

enum class MetricKind : std::uint8_t { counter, gauge };

/// Compile-time metric identifiers, one per IW_METRICS entry.
enum class MetricId : std::uint16_t {
#define IW_METRIC_ENUM(id, name, kind) id,
  IW_METRICS(IW_METRIC_ENUM)
#undef IW_METRIC_ENUM
      kCount,
};

inline constexpr std::size_t kMetricCount =
    static_cast<std::size_t>(MetricId::kCount);

/// Stable export name of a metric (the JSON key).
[[nodiscard]] const char* metric_name(MetricId id) noexcept;
[[nodiscard]] MetricKind metric_kind(MetricId id) noexcept;

/// A frozen copy of the registry's tables at one point in time.
struct MetricsSnapshot {
  std::array<std::uint64_t, kMetricCount> counters{};
  std::array<double, kMetricCount> gauges{};

  /// The change since `earlier`: counters subtract (saturating at zero so a
  /// cleared registry never produces huge wrapped deltas), gauges keep this
  /// snapshot's value.
  [[nodiscard]] MetricsSnapshot delta(const MetricsSnapshot& earlier) const;

  /// One flat JSON object, metric names as keys, counters as integers.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] std::uint64_t counter(MetricId id) const {
    return counters[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] double gauge(MetricId id) const {
    return gauges[static_cast<std::size_t>(id)];
  }
};

/// The flat counter/gauge tables plus the publish seams. Not thread-safe;
/// harnesses publish from one thread (the sweep runner publishes under its
/// collector lock).
class MetricsRegistry {
 public:
  /// Adds to a counter metric.
  void add(MetricId id, std::uint64_t delta) {
    counters_[static_cast<std::size_t>(id)] += delta;
  }
  /// Writes a gauge metric.
  void set(MetricId id, double value) {
    gauges_[static_cast<std::size_t>(id)] = value;
  }
  /// Writes a gauge metric only if `value` exceeds the current one (peaks,
  /// capacities — combines across multiple publishers).
  void set_max(MetricId id, double value) {
    double& g = gauges_[static_cast<std::size_t>(id)];
    if (value > g) g = value;
  }

  [[nodiscard]] std::uint64_t counter(MetricId id) const {
    return counters_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] double gauge(MetricId id) const {
    return gauges_[static_cast<std::size_t>(id)];
  }

  /// Publish seams: fold one layer's local counters into the registry.
  /// Counter sources must be published once per run (they add); gauge
  /// sources combine via set/set_max and are safe to re-publish.
  void publish(const sim::Engine& engine);
  void publish(const mpi::Transport& transport);
  void publish(const memory::BandwidthDomain& domain);
  void publish(const Tracer& tracer);

  [[nodiscard]] MetricsSnapshot snapshot() const {
    MetricsSnapshot s;
    s.counters = counters_;
    s.gauges = gauges_;
    return s;
  }

  /// Zeroes every table (capacity-free; the tables are inline arrays).
  void clear() {
    counters_.fill(0);
    gauges_.fill(0.0);
  }

 private:
  std::array<std::uint64_t, kMetricCount> counters_{};
  std::array<double, kMetricCount> gauges_{};
};

}  // namespace iw::obs
