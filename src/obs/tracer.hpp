// Protocol flight recorder.
//
// The tracer is an opt-in sink for typed protocol events. Instrumented
// layers (Engine, Transport, Process) hold a raw `Tracer*` that is null in
// every un-traced run: the hot-path cost of the instrumentation is then a
// single well-predicted branch, and no obs code executes at all. When a
// tracer is armed, each event is one store into a preallocated ring buffer
// — no allocation, no formatting, no I/O — so the steady-state
// zero-allocation certification holds with the recorder compiled in and
// even with it armed.
//
// The ring wraps: once `capacity` records have been written the oldest are
// overwritten and counted in `dropped()`. Exporters tolerate the resulting
// orphan arrivals (a recv whose matching send was evicted).
//
// This header is included from src/sim and src/mpi hot paths, so it must
// stay free of the banned constructs (std::function, std::unordered_map,
// std::shared_ptr) and must not pull in heavyweight headers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/time.hpp"

namespace iw::obs {

/// Every protocol interaction the recorder distinguishes. Send/recv pairs
/// (eager, RTS, CTS, push, get, FIN) become flow arrows in the Chrome-trace
/// export; the rest render as instant events on the owning rank's track.
enum class TraceEvent : std::uint8_t {
  kRunBegin,         // engine run loop entered
  kRunEnd,           // engine run loop drained or stopped
  kPostSend,         // application posted a send
  kPostRecv,         // application posted a receive
  kMatch,            // a posted receive matched an arrived message
  kEagerSend,        // eager payload injected at the sender
  kEagerRecv,        // eager payload arrived at the receiver
  kUnexpectedEager,  // eager payload arrived before the matching recv
  kRtsSend,          // rendezvous request-to-send injected
  kRtsRecv,          // RTS arrived at the receiver
  kUnexpectedRts,    // RTS arrived before the matching recv
  kCtsSend,          // clear-to-send (RTR) issued by the receiver
  kCtsRecv,          // CTS arrived back at the sender
  kPushSend,         // two-sided rendezvous payload left the sender
  kPushRecv,         // two-sided rendezvous payload arrived
  kPutSend,          // RDMA put payload left the sender
  kGetSend,          // RDMA get issued by the receiver
  kGetRecv,          // RDMA get payload arrived at the receiver
  kFinSend,          // rendezvous FIN injected
  kFinRecv,          // FIN arrived
  kNicPark,          // injection deferred into the NIC retry backlog
  kNicDrain,         // a parked injection drained onto the wire
  kCreditCharge,     // an eager credit was charged for a send
  kCreditReturn,     // an eager credit returned to the sender's pool
  kCreditDemotion,   // credit exhaustion demoted an eager to rendezvous
  kWaitBegin,        // rank blocked in waitall
  kWaitEnd,          // rank unblocked
  kCount,            // sentinel — number of event kinds
};

/// Stable lower_snake name for an event kind (used by exporters and tests).
[[nodiscard]] const char* to_string(TraceEvent ev) noexcept;

/// One recorded event. Fields that do not apply to a kind hold the neutral
/// values (`peer` -1, `bytes` 0, `slot` kNoSlot).
struct TraceRecord {
  SimTime t;
  TraceEvent ev = TraceEvent::kCount;
  std::int32_t rank = -1;
  std::int32_t peer = -1;
  std::int64_t bytes = 0;
  std::uint32_t slot = 0;
};

/// Fixed-capacity wrapping ring of TraceRecords. All storage is allocated
/// at construction; record() never allocates.
class Tracer {
 public:
  /// `slot` value meaning "no rendezvous slab slot involved".
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Default ring capacity: large enough for every catalog quick point
  /// (tens of thousands of protocol events) at ~32 B/record.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Appends one record, overwriting the oldest when full. Never allocates.
  /// Deliberately out of line: the call sites sit in the transport/process
  /// hot paths guarded by a null check, and keeping the ring store out of
  /// those functions keeps the disarmed instrumentation down to one
  /// compare-and-branch of code footprint per site.
  void record(SimTime t, TraceEvent ev, std::int32_t rank,
              std::int32_t peer = -1, std::int64_t bytes = 0,
              std::uint32_t slot = kNoSlot) noexcept;

  /// Number of records currently held (≤ capacity()).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Records overwritten because the ring wrapped.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Copies the held records out in recording order (oldest first). The
  /// only allocating operation; meant for export after a run, not hot use.
  [[nodiscard]] std::vector<TraceRecord> drain_ordered() const;

  /// Forgets all records (capacity unchanged, no allocation).
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

 private:
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;   // next write position
  std::size_t size_ = 0;   // records held
  std::uint64_t dropped_ = 0;
};

}  // namespace iw::obs
