// Grouped, self-validating transport configuration.
//
// The transport's knobs fall into three independent concerns and are grouped
// accordingly (replacing the flat Transport::Options of earlier revisions):
//
//   * NicModel         — how fast the NIC drains injections (finite in-flight
//                        injection budget + retry-backlog capacity);
//   * EagerPolicy      — when a message may go eager (size threshold,
//                        receive-buffer capacity, credit window);
//   * RendezvousPolicy — how a rendezvous payload moves once the handshake
//                        matches (flavor) and how pushes pipeline.
//
// A TransportConfig is plain data: copy it around, poke fields, then
// validate() before handing it to Transport. validate() rejects inconsistent
// combinations with messages that say how to fix them, and the lint suite
// (tools/lint/lint.py, rule transport-config-validate) enforces that every
// field declared here is covered by validate().
//
// The protocol *size rule* (eager vs rendezvous by message size) is also
// centralized here — Transport, the experiment driver and the verify oracle
// all call eager_limit_for()/protocol_by_size() so the rule cannot drift
// between the simulator and its predictors.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "mpi/message.hpp"

namespace iw::mpi {

/// Finite-injection-rate NIC model (LCI's bounded-queue sends: try to post,
/// else enqueue on a retry backlog drained as injections complete).
struct NicModel {
  /// Max in-flight injections per rank (posted sends whose NIC serialization
  /// has not finished). 0 = unbounded: the ideal NIC of the plain Hockney
  /// model, with no backlog machinery on the hot path at all.
  int injection_depth = 0;
  /// Max entries the per-rank retry backlog may hold before further posts
  /// are a hard error. 0 = unbounded (the backlog grows its pooled storage
  /// as needed). Only meaningful with a finite injection_depth.
  int backlog_capacity = 0;
};

/// Eager-protocol admission policy.
struct EagerPolicy {
  /// Overrides the fabric's eager/rendezvous size threshold if >= 0.
  std::int64_t limit_override = -1;
  /// Max eager payload bytes in flight (sent but not yet matched) per
  /// (source, destination) pair; further eager sends fall back to
  /// rendezvous until the backlog drains.
  std::int64_t buffer_capacity = std::numeric_limits<std::int64_t>::max();
  /// Credit-based flow control: max eager *messages* in flight (sent but
  /// not yet matched at the receiver) per (source, destination) pair.
  /// Exhaustion forces rendezvous; credits return when the receiver drains
  /// the message. 0 = unlimited (no credit accounting on the hot path).
  int credit_window = 0;
};

/// Rendezvous payload-movement policy.
struct RendezvousPolicy {
  RendezvousFlavor flavor = RendezvousFlavor::two_sided;
  /// Sender-side push pipelining (see message.hpp). Applies to the
  /// two_sided flavor only: one-sided puts/gets are executed by the NIC
  /// and never held behind the sender's other handshakes.
  RendezvousPipelining pipelining = RendezvousPipelining::deferred_push;
};

struct TransportConfig {
  NicModel nic;
  EagerPolicy eager;
  RendezvousPolicy rendezvous;

  /// Rejects inconsistent combinations with an std::invalid_argument whose
  /// message names the offending field and how to fix it.
  void validate() const;

  /// The effective eager/rendezvous size threshold given the fabric's
  /// default (`fabric.eager_limit_bytes`).
  [[nodiscard]] std::int64_t eager_limit_for(
      std::int64_t fabric_default_limit) const {
    return eager.limit_override >= 0 ? eager.limit_override
                                     : fabric_default_limit;
  }

  /// The *size rule* half of the protocol decision — the static part shared
  /// by the transport, the experiment driver's Tcomm predictor and the
  /// verify oracle. (The transport adds the dynamic buffer/credit fallbacks
  /// on top; see Transport::protocol_for.)
  [[nodiscard]] WireProtocol protocol_by_size(
      std::int64_t bytes, std::int64_t fabric_default_limit) const {
    return bytes <= eager_limit_for(fabric_default_limit)
               ? WireProtocol::eager
               : WireProtocol::rendezvous;
  }

  /// Idealized transport: unbounded NIC, infinite eager buffering, no
  /// credits, two-sided rendezvous with deferred pushes (the paper's
  /// production-system semantics).
  [[nodiscard]] static TransportConfig ideal() { return {}; }

  /// Finite-injection NIC: at most `injection_depth` in-flight injections
  /// per rank; excess posts queue on the retry backlog (optionally bounded
  /// by `backlog_capacity`).
  [[nodiscard]] static TransportConfig finite_nic(int injection_depth,
                                                  int backlog_capacity = 0) {
    TransportConfig c;
    c.nic.injection_depth = injection_depth;
    c.nic.backlog_capacity = backlog_capacity;
    return c;
  }

  /// Credit-limited eager flow control: at most `credit_window` unmatched
  /// eager messages per endpoint pair; exhaustion forces rendezvous.
  [[nodiscard]] static TransportConfig credit_limited(int credit_window) {
    TransportConfig c;
    c.eager.credit_window = credit_window;
    return c;
  }
};

/// Inverse of to_string(RendezvousFlavor); throws std::invalid_argument on
/// an unknown name (listing the valid ones).
[[nodiscard]] RendezvousFlavor rendezvous_flavor_from_string(
    const std::string& name);

}  // namespace iw::mpi
