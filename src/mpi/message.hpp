// Message-passing primitives of the simulated MPI layer.
#pragma once

#include <cstdint>

namespace iw::mpi {

/// Wire protocol actually used for a message (paper Sec. II-C1). Short
/// messages go eager (buffered, no handshake — the sender "can get rid of
/// its messages"); large ones go rendezvous (RTS/CTS handshake that couples
/// the sender to the receiver's progress).
enum class WireProtocol : std::uint8_t { eager, rendezvous };

/// Sender-side pipelining semantics for rendezvous data pushes.
///
/// `deferred_push` models the coupling observed on the paper's production
/// systems: a process does not push payload for any handshake-complete
/// rendezvous send while at least one of its own rendezvous handshakes is
/// still outstanding. This reproduces the paper's sigma = 2 propagation
/// speed for bidirectional rendezvous communication (Sec. IV-C, Fig. 5(g,h),
/// Fig. 7) while leaving every other mode at sigma = 1.
///
/// `independent` is the idealized fully-asynchronous semantic; under it all
/// modes propagate at sigma = 1 (the ablation bench demonstrates this).
enum class RendezvousPipelining : std::uint8_t { deferred_push, independent };

/// How the rendezvous payload actually moves once the handshake matches.
///
/// `two_sided` is the classic RTS/CTS/push exchange: the receiver answers the
/// RTS with a CTS, the sender pushes payload, and the *receiver's CPU*
/// completes the message (charged a receive overhead `o`).
///
/// `rdma_put` models a one-sided writer protocol (LCI's RECV_READY /
/// SEND_WRITE_FIN shape): the CTS doubles as an RTR carrying the target
/// address and remote key, the sender's NIC puts the payload straight into
/// the receive buffer, and a trailing FIN control message — not the payload
/// arrival — completes the receiver. No receive-side CPU overhead is charged.
///
/// `rdma_get` models a one-sided reader protocol: the RTS itself carries the
/// source buffer's remote key, the receiver issues a GET request (a control
/// message back to the source), the source NIC streams the payload without
/// CPU involvement, and a FIN from the receiver retires the sender's buffer.
enum class RendezvousFlavor : std::uint8_t { two_sided, rdma_put, rdma_get };

[[nodiscard]] constexpr const char* to_string(RendezvousFlavor f) {
  switch (f) {
    case RendezvousFlavor::two_sided: return "two_sided";
    case RendezvousFlavor::rdma_put: return "rdma_put";
    case RendezvousFlavor::rdma_get: return "rdma_get";
  }
  return "?";
}

/// Message envelope used for matching: MPI matches on (source, tag) within a
/// communicator; we have a single communicator per simulation.
struct Envelope {
  int src = -1;
  int dst = -1;
  int tag = 0;
  std::int64_t bytes = 0;

  [[nodiscard]] bool matches(int want_src, int want_tag) const {
    return src == want_src && tag == want_tag;
  }
};

}  // namespace iw::mpi
