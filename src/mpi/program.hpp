// Rank programs: the instruction streams interpreted by simulated processes.
//
// A Program is a linear sequence of operations in the spirit of LogGOPSim's
// GOAL schedules, specialized to the bulk-synchronous structure the paper
// studies: compute (core-bound or memory-bound), nonblocking posts, a
// closing WaitAll per iteration, plus one-off delay injection and timestep
// markers for tracing.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "support/time.hpp"

namespace iw::mpi {

/// Core-bound compute phase of fixed nominal duration. If `noisy`, attached
/// noise models add a random extra delay per phase.
struct OpCompute {
  Duration duration;
  bool noisy = true;
};

/// Memory-bound compute phase: moves `bytes` through the rank's bandwidth
/// domain (processor sharing with socket neighbors). Also receives noise.
struct OpMemWork {
  std::int64_t bytes = 0;
  bool noisy = true;
};

/// Deliberately injected one-off delay — the disturbance whose propagation
/// the paper studies. Traced separately from regular compute.
struct OpInject {
  Duration duration;
};

/// Nonblocking send / receive posts.
struct OpIsend {
  int peer = -1;
  std::int64_t bytes = 0;
  int tag = 0;
};
struct OpIrecv {
  int peer = -1;
  std::int64_t bytes = 0;
  int tag = 0;
};

/// Waits for all requests posted since the previous WaitAll.
struct OpWaitAll {};

/// Marks the beginning of application time step `step` (used for Fig. 2
/// style "where is time step t on the wall-clock axis" analyses).
struct OpMark {
  std::int32_t step = 0;
};

using Op =
    std::variant<OpCompute, OpMemWork, OpInject, OpIsend, OpIrecv, OpWaitAll,
                 OpMark>;

/// A rank's full instruction stream, with fluent builder helpers.
class Program {
 public:
  Program& compute(Duration d, bool noisy = true);
  Program& mem_work(std::int64_t bytes, bool noisy = true);
  Program& inject(Duration d);
  Program& isend(int peer, std::int64_t bytes, int tag);
  Program& irecv(int peer, std::int64_t bytes, int tag);
  Program& waitall();
  Program& mark(std::int32_t step);

  [[nodiscard]] const std::vector<Op>& ops() const { return ops_; }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  [[nodiscard]] bool empty() const { return ops_.empty(); }

  /// Total nominal (noise-free, contention-free) injected delay time.
  [[nodiscard]] Duration total_injected() const;

  /// Number of WaitAll operations (== communication rounds).
  [[nodiscard]] int rounds() const;

  /// Exact upper bound on the trace segments this program can record: one
  /// per compute/mem_work/inject op plus at most one wait segment per
  /// WaitAll. The Cluster sizes per-rank trace rows from this, so recording
  /// never reallocates and never over-reserves (the old `size()` bound
  /// counted every send/recv post as a segment — ~3x waste at scale).
  [[nodiscard]] std::size_t segment_bound() const;

  /// Largest number of requests simultaneously open in any WaitAll window
  /// (posts since the previous WaitAll). The Cluster sizes the shared
  /// request slab from this.
  [[nodiscard]] std::size_t max_window_requests() const {
    return max_window_requests_;
  }

 private:
  std::vector<Op> ops_;
  std::size_t window_requests_ = 0;
  std::size_t max_window_requests_ = 0;
};

}  // namespace iw::mpi
