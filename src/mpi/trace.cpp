#include "mpi/trace.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace iw::mpi {

namespace {
constexpr std::size_t kOffsetLimit = std::numeric_limits<std::uint32_t>::max();
}  // namespace

Trace::Trace(int ranks)
    : seg_rows_(static_cast<std::size_t>(ranks)),
      step_rows_(static_cast<std::size_t>(ranks)),
      finish_(static_cast<std::size_t>(ranks), SimTime::zero()) {
  IW_REQUIRE(ranks > 0, "trace needs at least one rank");
}

void Trace::check_rank(int rank) const {
  IW_REQUIRE(rank >= 0 && rank < ranks(), "rank out of range");
}

template <typename T>
void Trace::grow_row(Row& row, std::vector<T>& slab) {
  const std::uint32_t new_cap = std::max<std::uint32_t>(4, row.capacity * 2);
  IW_CHECK(slab.size() + new_cap <= kOffsetLimit, "trace slab offset overflow");
  if (row.capacity != 0 &&
      static_cast<std::size_t>(row.offset) + row.capacity == slab.size()) {
    // The row already sits at the slab tail: extend in place.
    slab.resize(slab.size() + (new_cap - row.capacity));
  } else {
    // Relocate to the tail; the vacated region is abandoned (unreserved
    // rows only — the Cluster's exact reservations never take this path).
    const auto new_offset = static_cast<std::uint32_t>(slab.size());
    slab.resize(slab.size() + new_cap);
    std::copy_n(slab.begin() + row.offset, row.count,
                slab.begin() + new_offset);
    row.offset = new_offset;
  }
  row.capacity = new_cap;
}

void Trace::reserve_rank(int rank, std::size_t segments, std::size_t steps) {
  check_rank(rank);
  const auto r = static_cast<std::size_t>(rank);
  IW_REQUIRE(seg_rows_[r].count == 0 && seg_rows_[r].capacity == 0 &&
                 step_rows_[r].count == 0 && step_rows_[r].capacity == 0,
             "reserve_rank on a rank that already holds data");
  IW_CHECK(seg_slab_.size() + segments <= kOffsetLimit &&
               step_slab_.size() + steps <= kOffsetLimit,
           "trace slab offset overflow");
  seg_rows_[r].offset = static_cast<std::uint32_t>(seg_slab_.size());
  seg_rows_[r].capacity = static_cast<std::uint32_t>(segments);
  seg_slab_.resize(seg_slab_.size() + segments);
  step_rows_[r].offset = static_cast<std::uint32_t>(step_slab_.size());
  step_rows_[r].capacity = static_cast<std::uint32_t>(steps);
  step_slab_.resize(step_slab_.size() + steps);
}

void Trace::add_segment(int rank, Segment seg) {
  check_rank(rank);
  IW_CHECK(seg.end >= seg.begin, "segment must have non-negative duration");
  Row& row = seg_rows_[static_cast<std::size_t>(rank)];
  if (row.count == row.capacity) grow_row(row, seg_slab_);
  seg_slab_[row.offset + row.count++] = seg;
}

void Trace::mark_step(int rank, std::int32_t step, SimTime when) {
  check_rank(rank);
  Row& row = step_rows_[static_cast<std::size_t>(rank)];
  IW_CHECK(step == static_cast<std::int32_t>(row.count),
           "steps must be marked consecutively from zero");
  if (row.count == row.capacity) grow_row(row, step_slab_);
  step_slab_[row.offset + row.count++] = when;
}

void Trace::set_finish(int rank, SimTime when) {
  check_rank(rank);
  finish_[static_cast<std::size_t>(rank)] = when;
}

void Trace::alias_rank(int rank, int source) {
  check_rank(rank);
  check_rank(source);
  IW_REQUIRE(rank != source, "cannot alias a rank to itself");
  const auto r = static_cast<std::size_t>(rank);
  const auto s = static_cast<std::size_t>(source);
  IW_REQUIRE(seg_rows_[r].count == 0 && seg_rows_[r].capacity == 0 &&
                 step_rows_[r].count == 0 && step_rows_[r].capacity == 0,
             "alias_rank target already holds data");
  seg_rows_[r] = seg_rows_[s];
  step_rows_[r] = step_rows_[s];
  finish_[r] = finish_[s];
}

void Trace::import_rank(int rank, const Trace& source, int source_rank) {
  check_rank(rank);
  source.check_rank(source_rank);
  const auto segs = source.segments(source_rank);
  const auto steps = source.step_begin(source_rank);
  reserve_rank(rank, segs.size(), steps.size());
  const auto r = static_cast<std::size_t>(rank);
  std::copy(segs.begin(), segs.end(), seg_slab_.begin() + seg_rows_[r].offset);
  seg_rows_[r].count = static_cast<std::uint32_t>(segs.size());
  std::copy(steps.begin(), steps.end(),
            step_slab_.begin() + step_rows_[r].offset);
  step_rows_[r].count = static_cast<std::uint32_t>(steps.size());
  finish_[r] = source.finish(source_rank);
}

std::span<const Segment> Trace::segments(int rank) const {
  check_rank(rank);
  const Row& row = seg_rows_[static_cast<std::size_t>(rank)];
  return {seg_slab_.data() + row.offset, row.count};
}

std::span<const SimTime> Trace::step_begin(int rank) const {
  check_rank(rank);
  const Row& row = step_rows_[static_cast<std::size_t>(rank)];
  return {step_slab_.data() + row.offset, row.count};
}

SimTime Trace::finish(int rank) const {
  check_rank(rank);
  return finish_[static_cast<std::size_t>(rank)];
}

SimTime Trace::makespan() const {
  return *std::max_element(finish_.begin(), finish_.end());
}

Duration Trace::total(int rank, SegKind kind) const {
  Duration sum = Duration::zero();
  for (const auto& seg : segments(rank))
    if (seg.kind == kind) sum += seg.duration();
  return sum;
}

std::size_t Trace::bytes_used() const {
  return seg_slab_.capacity() * sizeof(Segment) +
         step_slab_.capacity() * sizeof(SimTime) +
         (seg_rows_.capacity() + step_rows_.capacity()) * sizeof(Row) +
         finish_.capacity() * sizeof(SimTime);
}

}  // namespace iw::mpi
