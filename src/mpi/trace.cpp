#include "mpi/trace.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace iw::mpi {

Trace::Trace(int ranks)
    : segments_(static_cast<std::size_t>(ranks)),
      step_begin_(static_cast<std::size_t>(ranks)),
      finish_(static_cast<std::size_t>(ranks), SimTime::zero()) {
  IW_REQUIRE(ranks > 0, "trace needs at least one rank");
}

void Trace::reserve_rank(int rank, std::size_t segments, std::size_t steps) {
  IW_REQUIRE(rank >= 0 && rank < ranks(), "rank out of range");
  segments_[static_cast<std::size_t>(rank)].reserve(segments);
  step_begin_[static_cast<std::size_t>(rank)].reserve(steps);
}

void Trace::add_segment(int rank, Segment seg) {
  IW_REQUIRE(rank >= 0 && rank < ranks(), "rank out of range");
  IW_CHECK(seg.end >= seg.begin, "segment must have non-negative duration");
  segments_[static_cast<std::size_t>(rank)].push_back(seg);
}

void Trace::mark_step(int rank, std::int32_t step, SimTime when) {
  IW_REQUIRE(rank >= 0 && rank < ranks(), "rank out of range");
  auto& marks = step_begin_[static_cast<std::size_t>(rank)];
  IW_CHECK(step == static_cast<std::int32_t>(marks.size()),
            "steps must be marked consecutively from zero");
  marks.push_back(when);
}

void Trace::set_finish(int rank, SimTime when) {
  IW_REQUIRE(rank >= 0 && rank < ranks(), "rank out of range");
  finish_[static_cast<std::size_t>(rank)] = when;
}

const std::vector<Segment>& Trace::segments(int rank) const {
  IW_REQUIRE(rank >= 0 && rank < ranks(), "rank out of range");
  return segments_[static_cast<std::size_t>(rank)];
}

const std::vector<SimTime>& Trace::step_begin(int rank) const {
  IW_REQUIRE(rank >= 0 && rank < ranks(), "rank out of range");
  return step_begin_[static_cast<std::size_t>(rank)];
}

SimTime Trace::finish(int rank) const {
  IW_REQUIRE(rank >= 0 && rank < ranks(), "rank out of range");
  return finish_[static_cast<std::size_t>(rank)];
}

SimTime Trace::makespan() const {
  return *std::max_element(finish_.begin(), finish_.end());
}

Duration Trace::total(int rank, SegKind kind) const {
  Duration sum = Duration::zero();
  for (const auto& seg : segments(rank))
    if (seg.kind == kind) sum += seg.duration();
  return sum;
}

}  // namespace iw::mpi
