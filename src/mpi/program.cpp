#include "mpi/program.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace iw::mpi {

Program& Program::compute(Duration d, bool noisy) {
  IW_REQUIRE(d.ns() >= 0, "compute duration must be non-negative");
  ops_.emplace_back(OpCompute{d, noisy});
  return *this;
}

Program& Program::mem_work(std::int64_t bytes, bool noisy) {
  IW_REQUIRE(bytes >= 0, "memory work must be non-negative");
  ops_.emplace_back(OpMemWork{bytes, noisy});
  return *this;
}

Program& Program::inject(Duration d) {
  IW_REQUIRE(d.ns() >= 0, "injected delay must be non-negative");
  ops_.emplace_back(OpInject{d});
  return *this;
}

Program& Program::isend(int peer, std::int64_t bytes, int tag) {
  IW_REQUIRE(peer >= 0, "send peer must be a valid rank");
  IW_REQUIRE(bytes >= 0, "message size must be non-negative");
  ops_.emplace_back(OpIsend{peer, bytes, tag});
  max_window_requests_ = std::max(max_window_requests_, ++window_requests_);
  return *this;
}

Program& Program::irecv(int peer, std::int64_t bytes, int tag) {
  IW_REQUIRE(peer >= 0, "recv peer must be a valid rank");
  IW_REQUIRE(bytes >= 0, "message size must be non-negative");
  ops_.emplace_back(OpIrecv{peer, bytes, tag});
  max_window_requests_ = std::max(max_window_requests_, ++window_requests_);
  return *this;
}

Program& Program::waitall() {
  ops_.emplace_back(OpWaitAll{});
  window_requests_ = 0;
  return *this;
}

Program& Program::mark(std::int32_t step) {
  ops_.emplace_back(OpMark{step});
  return *this;
}

Duration Program::total_injected() const {
  Duration total = Duration::zero();
  for (const auto& op : ops_)
    if (const auto* inject = std::get_if<OpInject>(&op))
      total += inject->duration;
  return total;
}

int Program::rounds() const {
  int n = 0;
  for (const auto& op : ops_)
    if (std::holds_alternative<OpWaitAll>(op)) ++n;
  return n;
}

std::size_t Program::segment_bound() const {
  std::size_t n = 0;
  for (const auto& op : ops_) {
    if (std::holds_alternative<OpCompute>(op) ||
        std::holds_alternative<OpMemWork>(op) ||
        std::holds_alternative<OpInject>(op) ||
        std::holds_alternative<OpWaitAll>(op))
      ++n;
  }
  return n;
}

}  // namespace iw::mpi
