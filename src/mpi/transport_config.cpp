#include "mpi/transport_config.hpp"

#include <stdexcept>

namespace iw::mpi {

namespace {
[[noreturn]] void reject(const std::string& message) {
  throw std::invalid_argument("TransportConfig: " + message);
}
}  // namespace

void TransportConfig::validate() const {
  // NicModel. Depth 0 is the ideal unbounded NIC; a bounded backlog without
  // a bounded injection budget could never fill, so it is almost certainly
  // a mistaken preset.
  if (nic.injection_depth < 0)
    reject("nic.injection_depth must be >= 0 (0 = unbounded ideal NIC), got " +
           std::to_string(nic.injection_depth));
  if (nic.backlog_capacity < 0)
    reject("nic.backlog_capacity must be >= 0 (0 = unbounded backlog), got " +
           std::to_string(nic.backlog_capacity));
  if (nic.backlog_capacity > 0 && nic.injection_depth == 0)
    reject("nic.backlog_capacity is finite but nic.injection_depth is 0 "
           "(unbounded NIC): the backlog can never be used — set a finite "
           "injection_depth or leave backlog_capacity at 0");

  // EagerPolicy.
  if (eager.limit_override < -1)
    reject("eager.limit_override must be -1 (use the fabric default) or a "
           "byte count >= 0, got " + std::to_string(eager.limit_override));
  if (eager.buffer_capacity <= 0)
    reject("eager.buffer_capacity must be > 0 bytes (use the default "
           "int64 max for an infinite buffer), got " +
           std::to_string(eager.buffer_capacity));
  if (eager.credit_window < 0)
    reject("eager.credit_window must be >= 0 (0 = unlimited credits), got " +
           std::to_string(eager.credit_window));

  // RendezvousPolicy. The enums arrive from CLI/catalog parsing — check the
  // underlying values are in range rather than trusting the cast.
  switch (rendezvous.flavor) {
    case RendezvousFlavor::two_sided:
    case RendezvousFlavor::rdma_put:
    case RendezvousFlavor::rdma_get:
      break;
    default:
      reject("rendezvous.flavor holds an out-of-range value " +
             std::to_string(static_cast<int>(rendezvous.flavor)) +
             " (valid: two_sided, rdma_put, rdma_get)");
  }
  switch (rendezvous.pipelining) {
    case RendezvousPipelining::deferred_push:
    case RendezvousPipelining::independent:
      break;
    default:
      reject("rendezvous.pipelining holds an out-of-range value " +
             std::to_string(static_cast<int>(rendezvous.pipelining)) +
             " (valid: deferred_push, independent)");
  }
}

RendezvousFlavor rendezvous_flavor_from_string(const std::string& name) {
  if (name == "two_sided") return RendezvousFlavor::two_sided;
  if (name == "rdma_put") return RendezvousFlavor::rdma_put;
  if (name == "rdma_get") return RendezvousFlavor::rdma_get;
  throw std::invalid_argument(
      "unknown rendezvous flavor '" + name +
      "' (valid: two_sided, rdma_put, rdma_get)");
}

}  // namespace iw::mpi
