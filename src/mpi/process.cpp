#include "mpi/process.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace iw::mpi {

Process::Process(int rank, sim::Engine& engine, Transport& transport,
                 Trace& trace)
    : rank_(rank), engine_(engine), transport_(transport), trace_(&trace) {
  IW_REQUIRE(rank >= 0, "rank must be non-negative");
}

void Process::set_program(const Program* program) {
  IW_REQUIRE(program != nullptr, "program must not be null");
  program_ = program;
}

void Process::reset(Trace& trace) {
  trace_ = &trace;
  program_ = nullptr;
  domain_ = nullptr;
  tracer_ = nullptr;
  noise_.clear();
  pc_ = 0;
  next_step_ = 0;
  req_count_ = 0;  // storage binding/capacity retained for the next run
  open_requests_ = 0;
  latest_due_ = SimTime::zero();
  blocked_ = false;
  wait_begin_ = SimTime::zero();
  done_ = false;
  on_done_ = DoneFn{};
}

void Process::reset(int rank, Trace& trace) {
  IW_REQUIRE(rank >= 0, "rank must be non-negative");
  rank_ = rank;
  reset(trace);
}

void Process::set_request_storage(Request* base, std::uint32_t capacity) {
  IW_REQUIRE(req_count_ == 0,
             "cannot rebind request storage while requests are open");
  req_ = base;
  req_cap_ = capacity;
}

void Process::grow_own_requests() {
  IW_CHECK(req_ == nullptr || req_ == own_requests_.data(),
           "request window exceeds the cluster-provided slab capacity");
  own_requests_.resize(std::max<std::size_t>(8, own_requests_.size() * 2));
  req_ = own_requests_.data();
  req_cap_ = static_cast<std::uint32_t>(own_requests_.size());
}

Request& Process::push_request(Request r) {
  if (req_count_ == req_cap_) grow_own_requests();
  req_[req_count_] = r;
  return req_[req_count_++];
}

void Process::add_noise(std::unique_ptr<noise::NoiseModel> model, Rng rng) {
  IW_REQUIRE(model != nullptr, "noise model must not be null");
  noise_.push_back(NoiseSource{std::move(model), rng});
}

void Process::start() {
  IW_REQUIRE(program_ != nullptr, "start() requires a program");
  engine_.at(engine_.now(), [this] { resume(); });
}

Duration Process::sample_noise() {
  Duration extra = Duration::zero();
  for (auto& src : noise_) extra += src.model->sample(src.rng);
  return extra;
}

void Process::resume() {
  const auto& ops = program_->ops();
  while (pc_ < ops.size()) {
    const Op& op = ops[pc_];

    // The send/recv posts lead the dispatch chain: a step posts one of
    // each per neighbor but hits every other op kind once.
    if (const auto* send = std::get_if<OpIsend>(&op)) {
      const auto id = static_cast<RequestId>(req_count_);
      Request& req =
          push_request(Request{Request::Kind::send, send->peer, send->tag,
                               send->bytes, false, false, SimTime::zero()});
      // Eager sends hand back their local-completion delay instead of
      // scheduling a completion event; the request settles by the clock.
      if (const auto local = transport_.post_send(rank_, send->peer,
                                                  send->tag, send->bytes,
                                                  id)) {
        req.timed = true;
        req.due = engine_.now() + *local;
        latest_due_ = std::max(latest_due_, req.due);
      } else {
        ++open_requests_;
      }
      ++pc_;
      continue;
    }

    if (const auto* recv = std::get_if<OpIrecv>(&op)) {
      const auto id = static_cast<RequestId>(req_count_);
      push_request(Request{Request::Kind::recv, recv->peer, recv->tag,
                           recv->bytes, false, false, SimTime::zero()});
      // Count the receive open before posting: an unexpected match settles
      // it synchronously from inside post_recv.
      ++open_requests_;
      transport_.post_recv(rank_, recv->peer, recv->tag, recv->bytes, id);
      ++pc_;
      continue;
    }

    if (const auto* comp = std::get_if<OpCompute>(&op)) {
      const Duration extra = comp->noisy ? sample_noise() : Duration::zero();
      const Duration total = comp->duration + extra;
      const SimTime begin = engine_.now();
      const std::int32_t step = next_step_ - 1;
      engine_.after(total, [this, begin, extra, step] {
        trace_->add_segment(rank_, Segment{SegKind::compute, begin,
                                          engine_.now(), step, extra});
        ++pc_;
        resume();
      });
      return;
    }

    if (const auto* work = std::get_if<OpMemWork>(&op)) {
      IW_REQUIRE(domain_ != nullptr,
                 "OpMemWork requires a bandwidth domain on this rank");
      const Duration extra = work->noisy ? sample_noise() : Duration::zero();
      const SimTime begin = engine_.now();
      const std::int32_t step = next_step_ - 1;
      domain_->submit(work->bytes, [this, begin, extra, step] {
        engine_.after(extra, [this, begin, extra, step] {
          trace_->add_segment(rank_, Segment{SegKind::compute, begin,
                                            engine_.now(), step, extra});
          ++pc_;
          resume();
        });
      });
      return;
    }

    if (const auto* inject = std::get_if<OpInject>(&op)) {
      const SimTime begin = engine_.now();
      const std::int32_t step = next_step_ - 1;
      engine_.after(inject->duration, [this, begin, step] {
        trace_->add_segment(rank_, Segment{SegKind::injected, begin,
                                          engine_.now(), step,
                                          Duration::zero()});
        ++pc_;
        resume();
      });
      return;
    }

    if (std::holds_alternative<OpWaitAll>(op)) {
      if (requests_settled(engine_.now())) {
        req_count_ = 0;
        ++pc_;
        continue;
      }
      blocked_ = true;
      wait_begin_ = engine_.now();
      if (tracer_ != nullptr) [[unlikely]]
        tracer_->record(wait_begin_, obs::TraceEvent::kWaitBegin, rank_);
      schedule_timed_wake();
      return;
    }

    if (const auto* mark = std::get_if<OpMark>(&op)) {
      (void)mark;
      trace_->mark_step(rank_, next_step_, engine_.now());
      ++next_step_;
      ++pc_;
      continue;
    }

    IW_CHECK(false, "unhandled op kind");
  }

  // Program complete.
  if (!done_) {
    done_ = true;
    trace_->set_finish(rank_, engine_.now());
    if (on_done_.fn != nullptr) on_done_.fn(on_done_.ctx, rank_);
  }
}

bool Process::requests_settled(SimTime now) const {
  return open_requests_ == 0 && latest_due_ <= now;
}

void Process::schedule_timed_wake() {
  // If any unfinished request is event-driven, its completion will resume
  // us; otherwise nothing would, so wake at the latest known due time.
  // Each window arms at most one wake: the arming call is the one that
  // settles the last event-driven request, and requests settle only once.
  if (open_requests_ > 0) return;
  engine_.at(latest_due_, [this] {
    if (!blocked_) return;
    IW_ASSERT(requests_settled(engine_.now()),
              "timed wake before every request settled");
    finish_wait();
  });
}

void Process::finish_wait() {
  blocked_ = false;
  const SimTime now = engine_.now();
  if (tracer_ != nullptr) [[unlikely]]
    tracer_->record(now, obs::TraceEvent::kWaitEnd, rank_);
  if (now > wait_begin_) {
    trace_->add_segment(rank_, Segment{SegKind::wait, wait_begin_, now,
                                       next_step_ - 1, Duration::zero()});
  }
  req_count_ = 0;
  latest_due_ = SimTime::zero();
  ++pc_;
  resume();
}

void Process::on_request_complete(RequestId id) {
  IW_REQUIRE(id >= 0 && static_cast<std::uint32_t>(id) < req_count_,
             "unknown request id");
  Request& req = req_[static_cast<std::size_t>(id)];
  IW_ASSERT(!req.complete && !req.timed, "request completed twice");
  req.complete = true;
  --open_requests_;

  if (!blocked_) return;
  if (!requests_settled(engine_.now())) {
    // The last event-driven completion may leave only timed requests with
    // future due points; arm the wake so the WaitAll still ends.
    schedule_timed_wake();
    return;
  }
  finish_wait();
}

void Process::on_request_settles_at(RequestId id, SimTime due) {
  IW_REQUIRE(id >= 0 && static_cast<std::uint32_t>(id) < req_count_,
             "unknown request id");
  Request& req = req_[static_cast<std::size_t>(id)];
  IW_ASSERT(!req.complete && !req.timed, "request settled twice");
  req.timed = true;
  req.due = due;
  latest_due_ = std::max(latest_due_, due);
  --open_requests_;

  if (!blocked_) return;
  if (!requests_settled(engine_.now())) {
    schedule_timed_wake();
    return;
  }
  finish_wait();
}

}  // namespace iw::mpi
