#include "mpi/process.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace iw::mpi {

Process::Process(int rank, sim::Engine& engine, Transport& transport,
                 Trace& trace)
    : rank_(rank), engine_(engine), transport_(transport), trace_(trace) {
  IW_REQUIRE(rank >= 0, "rank must be non-negative");
}

void Process::set_program(std::shared_ptr<const Program> program) {
  IW_REQUIRE(program != nullptr, "program must not be null");
  program_ = std::move(program);
}

void Process::add_noise(std::unique_ptr<noise::NoiseModel> model, Rng rng) {
  IW_REQUIRE(model != nullptr, "noise model must not be null");
  noise_.push_back(NoiseSource{std::move(model), rng});
}

void Process::start() {
  IW_REQUIRE(program_ != nullptr, "start() requires a program");
  engine_.at(engine_.now(), [this] { resume(); });
}

Duration Process::sample_noise() {
  Duration extra = Duration::zero();
  for (auto& src : noise_) extra += src.model->sample(src.rng);
  return extra;
}

void Process::resume() {
  const auto& ops = program_->ops();
  while (pc_ < ops.size()) {
    const Op& op = ops[pc_];

    if (const auto* comp = std::get_if<OpCompute>(&op)) {
      const Duration extra = comp->noisy ? sample_noise() : Duration::zero();
      const Duration total = comp->duration + extra;
      const SimTime begin = engine_.now();
      const std::int32_t step = next_step_ - 1;
      engine_.after(total, [this, begin, extra, step] {
        trace_.add_segment(rank_, Segment{SegKind::compute, begin,
                                          engine_.now(), step, extra});
        ++pc_;
        resume();
      });
      return;
    }

    if (const auto* work = std::get_if<OpMemWork>(&op)) {
      IW_REQUIRE(domain_ != nullptr,
                 "OpMemWork requires a bandwidth domain on this rank");
      const Duration extra = work->noisy ? sample_noise() : Duration::zero();
      const SimTime begin = engine_.now();
      const std::int32_t step = next_step_ - 1;
      domain_->submit(work->bytes, [this, begin, extra, step] {
        engine_.after(extra, [this, begin, extra, step] {
          trace_.add_segment(rank_, Segment{SegKind::compute, begin,
                                            engine_.now(), step, extra});
          ++pc_;
          resume();
        });
      });
      return;
    }

    if (const auto* inject = std::get_if<OpInject>(&op)) {
      const SimTime begin = engine_.now();
      const std::int32_t step = next_step_ - 1;
      engine_.after(inject->duration, [this, begin, step] {
        trace_.add_segment(rank_, Segment{SegKind::injected, begin,
                                          engine_.now(), step,
                                          Duration::zero()});
        ++pc_;
        resume();
      });
      return;
    }

    if (const auto* send = std::get_if<OpIsend>(&op)) {
      const auto id = static_cast<RequestId>(requests_.size());
      requests_.push_back(
          Request{Request::Kind::send, send->peer, send->tag, send->bytes,
                  false});
      transport_.post_send(rank_, send->peer, send->tag, send->bytes, id);
      ++pc_;
      continue;
    }

    if (const auto* recv = std::get_if<OpIrecv>(&op)) {
      const auto id = static_cast<RequestId>(requests_.size());
      requests_.push_back(
          Request{Request::Kind::recv, recv->peer, recv->tag, recv->bytes,
                  false});
      transport_.post_recv(rank_, recv->peer, recv->tag, recv->bytes, id);
      ++pc_;
      continue;
    }

    if (std::holds_alternative<OpWaitAll>(op)) {
      const bool all_done =
          std::all_of(requests_.begin(), requests_.end(),
                      [](const Request& r) { return r.complete; });
      if (all_done) {
        requests_.clear();
        ++pc_;
        continue;
      }
      blocked_ = true;
      wait_begin_ = engine_.now();
      return;
    }

    if (const auto* mark = std::get_if<OpMark>(&op)) {
      (void)mark;
      trace_.mark_step(rank_, next_step_, engine_.now());
      ++next_step_;
      ++pc_;
      continue;
    }

    IW_ASSERT(false, "unhandled op kind");
  }

  // Program complete.
  if (!done_) {
    done_ = true;
    trace_.set_finish(rank_, engine_.now());
    if (on_done_) on_done_(rank_);
  }
}

void Process::on_request_complete(RequestId id) {
  IW_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < requests_.size(),
             "unknown request id");
  Request& req = requests_[static_cast<std::size_t>(id)];
  IW_ASSERT(!req.complete, "request completed twice");
  req.complete = true;

  if (!blocked_) return;
  const bool all_done =
      std::all_of(requests_.begin(), requests_.end(),
                  [](const Request& r) { return r.complete; });
  if (!all_done) return;

  blocked_ = false;
  const SimTime now = engine_.now();
  if (now > wait_begin_) {
    trace_.add_segment(rank_, Segment{SegKind::wait, wait_begin_, now,
                                      next_step_ - 1, Duration::zero()});
  }
  requests_.clear();
  ++pc_;
  resume();
}

}  // namespace iw::mpi
