// Execution traces: the raw material of every analysis in the paper.
//
// Each rank records a sequence of timed segments (compute, injected delay,
// waiting) plus per-timestep begin markers. The analysis layer extracts
// idle periods, wave fronts, decay rates and Fig. 2 style step positions
// from these traces.
//
// Storage is struct-of-arrays: one shared Segment slab and one shared
// SimTime slab, with a small per-rank row descriptor (offset/count/capacity)
// into each. At machine scale (100k-1M ranks) this replaces two heap
// allocations per rank with two slab allocations per run, keeps recording
// cache-linear, and makes the whole trace cost measurable via bytes_used().
// The Cluster reserves every rank's row exactly from its program before the
// run, so steady-state recording never reallocates; rows written without a
// reservation (tests, tools) grow by relocating to the slab tail, which
// wastes the vacated region but keeps the common reserved path branch-free.
// alias_rank() lets fast-forward synthesis share one physical row between
// ranks with provably identical timelines.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/time.hpp"

namespace iw::mpi {

enum class SegKind : std::uint8_t {
  compute,   ///< regular execution phase (noise included in duration)
  injected,  ///< deliberately injected one-off delay
  wait,      ///< blocked in WaitAll — idleness and communication delay
};

[[nodiscard]] constexpr const char* to_string(SegKind k) {
  switch (k) {
    case SegKind::compute: return "compute";
    case SegKind::injected: return "injected";
    case SegKind::wait: return "wait";
  }
  return "?";
}

struct Segment {
  SegKind kind = SegKind::compute;
  SimTime begin;
  SimTime end;
  std::int32_t step = -1;   ///< application timestep the segment belongs to
  Duration noise;           ///< noise portion of a compute segment

  [[nodiscard]] Duration duration() const { return end - begin; }
};

/// Trace of one full simulation run.
class Trace {
 public:
  explicit Trace(int ranks);

  void add_segment(int rank, Segment seg);
  void mark_step(int rank, std::int32_t step, SimTime when);
  void set_finish(int rank, SimTime when);

  /// Pre-sizes one rank's segment and step storage so a run of known shape
  /// (the Cluster derives it from the rank's program) records without
  /// reallocating mid-simulation. Rows must be reserved before any write
  /// and at most once.
  void reserve_rank(int rank, std::size_t segments, std::size_t steps);

  /// Makes `rank` share `source`'s physical rows (segments, step marks) and
  /// finish time. Used by the fast-forward path: every silent rank in a
  /// residue class has a byte-identical timeline, so one row serves them
  /// all. `rank` must not have recorded or reserved anything yet, and no
  /// further writes to either rank are allowed afterwards.
  void alias_rank(int rank, int source);

  /// Copies `source_rank`'s rows (segments, step marks, finish) from
  /// another trace into `rank` of this one — the fast-forward path imports
  /// one canonical reference-ring timeline per residue class, then
  /// alias_rank()s the rest of the class onto it. `rank` must not have
  /// recorded or reserved anything yet.
  void import_rank(int rank, const Trace& source, int source_rank);

  [[nodiscard]] int ranks() const {
    return static_cast<int>(finish_.size());
  }
  [[nodiscard]] std::span<const Segment> segments(int rank) const;
  /// Wall-clock times at which `rank` began each timestep, indexed by step.
  [[nodiscard]] std::span<const SimTime> step_begin(int rank) const;
  /// Time at which the rank finished its program.
  [[nodiscard]] SimTime finish(int rank) const;
  /// Completion time of the whole run (max over ranks).
  [[nodiscard]] SimTime makespan() const;

  /// Total time `rank` spent in segments of `kind`.
  [[nodiscard]] Duration total(int rank, SegKind kind) const;

  /// Heap bytes held by the trace (slabs + row tables), the dominant term
  /// of the per-rank memory budget at scale.
  [[nodiscard]] std::size_t bytes_used() const;

 private:
  /// Per-rank view into a slab. 32-bit offsets cap a slab at ~4.3G entries,
  /// loudly enforced — ample for 1M ranks at catalog step counts.
  struct Row {
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
    std::uint32_t capacity = 0;
  };

  template <typename T>
  static void grow_row(Row& row, std::vector<T>& slab);
  void check_rank(int rank) const;

  std::vector<Segment> seg_slab_;
  std::vector<SimTime> step_slab_;
  std::vector<Row> seg_rows_;
  std::vector<Row> step_rows_;
  std::vector<SimTime> finish_;
};

}  // namespace iw::mpi
