// Execution traces: the raw material of every analysis in the paper.
//
// Each rank records a sequence of timed segments (compute, injected delay,
// waiting) plus per-timestep begin markers. The analysis layer extracts
// idle periods, wave fronts, decay rates and Fig. 2 style step positions
// from these traces.
#pragma once

#include <cstdint>
#include <vector>

#include "support/time.hpp"

namespace iw::mpi {

enum class SegKind : std::uint8_t {
  compute,   ///< regular execution phase (noise included in duration)
  injected,  ///< deliberately injected one-off delay
  wait,      ///< blocked in WaitAll — idleness and communication delay
};

[[nodiscard]] constexpr const char* to_string(SegKind k) {
  switch (k) {
    case SegKind::compute: return "compute";
    case SegKind::injected: return "injected";
    case SegKind::wait: return "wait";
  }
  return "?";
}

struct Segment {
  SegKind kind = SegKind::compute;
  SimTime begin;
  SimTime end;
  std::int32_t step = -1;   ///< application timestep the segment belongs to
  Duration noise;           ///< noise portion of a compute segment

  [[nodiscard]] Duration duration() const { return end - begin; }
};

/// Trace of one full simulation run.
class Trace {
 public:
  explicit Trace(int ranks);

  void add_segment(int rank, Segment seg);
  void mark_step(int rank, std::int32_t step, SimTime when);
  void set_finish(int rank, SimTime when);

  /// Pre-sizes one rank's segment and step storage so a run of known shape
  /// (the Cluster derives it from the rank's program) records without
  /// reallocating mid-simulation.
  void reserve_rank(int rank, std::size_t segments, std::size_t steps);

  [[nodiscard]] int ranks() const { return static_cast<int>(segments_.size()); }
  [[nodiscard]] const std::vector<Segment>& segments(int rank) const;
  /// Wall-clock times at which `rank` began each timestep, indexed by step.
  [[nodiscard]] const std::vector<SimTime>& step_begin(int rank) const;
  /// Time at which the rank finished its program.
  [[nodiscard]] SimTime finish(int rank) const;
  /// Completion time of the whole run (max over ranks).
  [[nodiscard]] SimTime makespan() const;

  /// Total time `rank` spent in segments of `kind`.
  [[nodiscard]] Duration total(int rank, SegKind kind) const;

 private:
  std::vector<std::vector<Segment>> segments_;
  std::vector<std::vector<SimTime>> step_begin_;
  std::vector<SimTime> finish_;
};

}  // namespace iw::mpi
