// A simulated MPI process: interprets a rank Program against the engine,
// the transport, an optional bandwidth domain, and attached noise sources,
// recording a trace of everything it does.
//
// Processes are pooled by the Cluster: reset() re-arms one for another run
// (new trace binding, new program) while the request vector keeps its
// capacity, so steady-state interpretation allocates nothing per message.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "memory/bandwidth_domain.hpp"
#include "mpi/program.hpp"
#include "mpi/request.hpp"
#include "mpi/trace.hpp"
#include "mpi/transport.hpp"
#include "noise/noise_model.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace iw::mpi {

class Process {
 public:
  Process(int rank, sim::Engine& engine, Transport& transport, Trace& trace);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Non-owning: programs are immutable and must outlive the run (the
  /// Cluster keeps the caller's program vector alive for its duration).
  void set_program(const Program* program);

  /// Attaches a noise source; each compute phase adds one sample from every
  /// attached source. The process owns model and generator.
  void add_noise(std::unique_ptr<noise::NoiseModel> model, Rng rng);

  /// Bandwidth domain used by OpMemWork phases (socket memory interface).
  /// May stay null if the program has no memory-bound phases.
  void set_domain(memory::BandwidthDomain* domain) { domain_ = domain; }

  /// Arms (or with nullptr disarms) the protocol flight recorder: the
  /// process records wait_begin/wait_end around every blocking WaitAll.
  /// Cleared by reset(); harnesses re-arm per run.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Re-arms the process for another run: rebinds the trace, clears the
  /// program, noise sources, domain, and interpreter state. Request storage
  /// keeps its capacity.
  void reset(Trace& trace);

  /// reset() that also rebinds the process to a new rank id — the pooled
  /// fast-forward path reuses one contiguous block of processes for
  /// whatever sparse active set the plan selects.
  void reset(int rank, Trace& trace);

  /// Binds the request window to `capacity` slots of an external slab (the
  /// Cluster carves one slab for all ranks). Without a binding the process
  /// falls back to growable owned storage (standalone/test use). Must be
  /// called only while no requests are open.
  void set_request_storage(Request* base, std::uint32_t capacity);

  /// Called once after wiring; schedules the first instruction at t=0.
  void start();

  /// Transport callback: request `id` finished.
  void on_request_complete(RequestId id);

  /// Transport callback for completions whose finish time is already known
  /// (a matched receive settles `overhead` after its arrival, a rendezvous
  /// sender when its payload is injected): marks the request as settling at
  /// `due` instead of costing a completion event. A blocked WaitAll whose
  /// remaining requests are all timed re-arms a single wake at the latest
  /// due point — one event per wait window, not one per completion.
  void on_request_settles_at(RequestId id, SimTime due);

  /// Plain-pointer completion hook (rank-done notification): no type-erased
  /// state, so wiring it costs nothing on the hot path.
  struct DoneFn {
    void (*fn)(void* ctx, int rank) = nullptr;
    void* ctx = nullptr;
  };

  /// Invoked when the program has fully executed.
  void set_done_handler(DoneFn fn) { on_done_ = fn; }

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] bool blocked() const { return blocked_; }

 private:
  void resume();                    ///< interpret ops until blocked or timed
  [[nodiscard]] Duration sample_noise();
  /// True when every request is complete or past its timed due point.
  [[nodiscard]] bool requests_settled(SimTime now) const;
  /// If every unfinished request has a known (timed) completion point,
  /// schedules one wake event at the latest of them.
  void schedule_timed_wake();
  void finish_wait();               ///< records the wait segment, resumes

  int rank_;
  sim::Engine& engine_;
  Transport& transport_;
  Trace* trace_;
  const Program* program_ = nullptr;
  memory::BandwidthDomain* domain_ = nullptr;
  obs::Tracer* tracer_ = nullptr;

  struct NoiseSource {
    std::unique_ptr<noise::NoiseModel> model;
    Rng rng;
  };
  std::vector<NoiseSource> noise_;

  /// Appends to the request window, growing owned fallback storage if no
  /// slab is bound (a bound slab overflowing is a contract error: the
  /// Cluster sizes it from Program::max_window_requests()).
  Request& push_request(Request r);
  void grow_own_requests();

  std::size_t pc_ = 0;
  std::int32_t next_step_ = 0;
  /// Request window: a pointer into the Cluster's shared request slab (SoA
  /// storage, one carve per rank) or into own_requests_ when standalone.
  Request* req_ = nullptr;
  std::uint32_t req_count_ = 0;
  std::uint32_t req_cap_ = 0;
  std::vector<Request> own_requests_;
  /// O(1) WaitAll accounting: requests whose completion is event-driven
  /// and still outstanding, plus the latest timed due point of the window.
  int open_requests_ = 0;
  SimTime latest_due_ = SimTime::zero();
  bool blocked_ = false;
  SimTime wait_begin_;
  bool done_ = false;
  DoneFn on_done_;
};

}  // namespace iw::mpi
