// A simulated MPI process: interprets a rank Program against the engine,
// the transport, an optional bandwidth domain, and attached noise sources,
// recording a trace of everything it does.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "memory/bandwidth_domain.hpp"
#include "mpi/program.hpp"
#include "mpi/request.hpp"
#include "mpi/trace.hpp"
#include "mpi/transport.hpp"
#include "noise/noise_model.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace iw::mpi {

class Process {
 public:
  Process(int rank, sim::Engine& engine, Transport& transport, Trace& trace);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  void set_program(std::shared_ptr<const Program> program);

  /// Attaches a noise source; each compute phase adds one sample from every
  /// attached source. The process owns model and generator.
  void add_noise(std::unique_ptr<noise::NoiseModel> model, Rng rng);

  /// Bandwidth domain used by OpMemWork phases (socket memory interface).
  /// May stay null if the program has no memory-bound phases.
  void set_domain(memory::BandwidthDomain* domain) { domain_ = domain; }

  /// Called once after wiring; schedules the first instruction at t=0.
  void start();

  /// Transport callback: request `id` finished.
  void on_request_complete(RequestId id);

  /// Invoked when the program has fully executed.
  void set_done_handler(std::function<void(int rank)> fn) {
    on_done_ = std::move(fn);
  }

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] bool blocked() const { return blocked_; }

 private:
  void resume();                    ///< interpret ops until blocked or timed
  [[nodiscard]] Duration sample_noise();
  void finish_waitall();

  int rank_;
  sim::Engine& engine_;
  Transport& transport_;
  Trace& trace_;
  std::shared_ptr<const Program> program_;
  memory::BandwidthDomain* domain_ = nullptr;

  struct NoiseSource {
    std::unique_ptr<noise::NoiseModel> model;
    Rng rng;
  };
  std::vector<NoiseSource> noise_;

  std::size_t pc_ = 0;
  std::int32_t next_step_ = 0;
  std::vector<Request> requests_;
  bool blocked_ = false;
  SimTime wait_begin_;
  bool done_ = false;
  std::function<void(int)> on_done_;
};

}  // namespace iw::mpi
