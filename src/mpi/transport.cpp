#include "mpi/transport.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "support/error.hpp"

namespace iw::mpi {
namespace {

/// Packs a (src, dst) pair into one map key.
std::int64_t pair_key(int src, int dst) {
  return (static_cast<std::int64_t>(src) << 32) |
         static_cast<std::int64_t>(static_cast<std::uint32_t>(dst));
}

}  // namespace

Transport::Transport(sim::Engine& engine, const net::Topology& topo,
                     const net::FabricProfile& fabric, Options options)
    : engine_(engine),
      topo_(topo),
      fabric_(fabric),
      options_(options),
      eager_limit_(options.eager_limit_override >= 0
                       ? options.eager_limit_override
                       : fabric.eager_limit_bytes),
      ranks_(static_cast<std::size_t>(topo.ranks())) {}

void Transport::set_completion_handler(CompletionFn fn) {
  on_complete_ = std::move(fn);
}

void Transport::set_memory_domains(DomainLookup lookup) {
  domain_lookup_ = std::move(lookup);
}

void Transport::transfer(int src, int dst, std::int64_t bytes,
                         sim::EventFn on_injected, sim::EventFn on_arrival) {
  const net::LinkClass cls = topo_.classify(src, dst);
  const bool same_node = cls == net::LinkClass::intra_socket ||
                         cls == net::LinkClass::inter_socket;
  memory::BandwidthDomain* src_domain =
      (same_node && domain_lookup_) ? domain_lookup_(src) : nullptr;

  if (src_domain == nullptr) {
    // NIC path: serialize on the sender's NIC, arrive after the latency.
    const SimTime arrival = inject(src, dst, bytes);
    const SimTime injected = arrival - link(src, dst).latency;
    engine_.at(injected, std::move(on_injected));
    engine_.at(arrival, std::move(on_arrival));
    return;
  }

  // Memory path: source-side buffer copy, then destination-side copy-out,
  // each drawing on the owning socket's memory bandwidth (they contend with
  // computation — the effect the Eq. 1 model ignores). The arrival
  // continuation is moved stage to stage, not shared.
  memory::BandwidthDomain* dst_domain = domain_lookup_(dst);
  const Duration latency = link(src, dst).latency;
  src_domain->submit(
      bytes, [this, bytes, dst_domain, latency,
              injected = std::move(on_injected),
              arrival = std::move(on_arrival)]() mutable {
        injected();
        engine_.after(latency, [bytes, dst_domain,
                                arrival = std::move(arrival)]() mutable {
          if (dst_domain != nullptr) {
            dst_domain->submit(bytes, std::move(arrival));
          } else {
            arrival();
          }
        });
      });
}

const net::LinkParams& Transport::link(int a, int b) const {
  return fabric_.params(topo_.classify(a, b));
}

Transport::RankState& Transport::state(int rank) {
  IW_REQUIRE(rank >= 0 && rank < topo_.ranks(), "rank out of range");
  return ranks_[static_cast<std::size_t>(rank)];
}

std::int64_t Transport::eager_backlog(int src, int dst) const {
  const auto it = eager_backlog_.find(pair_key(src, dst));
  return it == eager_backlog_.end() ? 0 : it->second;
}

WireProtocol Transport::protocol_for(int src, int dst,
                                     std::int64_t bytes) const {
  if (bytes > eager_limit_) return WireProtocol::rendezvous;
  if (eager_backlog(src, dst) + bytes > options_.eager_buffer_capacity)
    return WireProtocol::rendezvous;
  return WireProtocol::eager;
}

Duration Transport::eager_transfer_time(int src, int dst,
                                        std::int64_t bytes) const {
  const auto& p = link(src, dst);
  return p.overhead + p.gap + p.transfer_time(bytes) + p.overhead;
}

Duration Transport::rendezvous_transfer_time(int src, int dst,
                                             std::int64_t bytes) const {
  const auto& p = link(src, dst);
  // RTS (gap + latency) + CTS (gap + latency) + data, plus endpoint
  // overheads on the payload.
  return p.overhead + (p.gap + p.control_time()) * 2 + p.gap +
         p.transfer_time(bytes) + p.overhead;
}

SimTime Transport::inject(int src, int dst, std::int64_t payload_bytes) {
  const auto& p = link(src, dst);
  RankState& s = state(src);
  const SimTime start = std::max(engine_.now(), s.nic_free);
  Duration busy = p.gap;
  if (payload_bytes > 0) {
    // The NIC is busy only for the injection itself, not the wire latency.
    busy += p.payload_time(payload_bytes);
  }
  s.nic_free = start + busy;
  return s.nic_free + p.latency;
}

void Transport::complete(int rank, RequestId request, Duration delay) {
  IW_ASSERT(on_complete_ != nullptr, "completion handler not set");
  engine_.after(delay, [this, rank, request] { on_complete_(rank, request); });
}

void Transport::post_send(int src, int dst, int tag, std::int64_t bytes,
                          RequestId request) {
  IW_REQUIRE(src != dst, "self-sends are not modeled");
  if (protocol_for(src, dst, bytes) == WireProtocol::eager) {
    send_eager(src, dst, tag, bytes, request);
  } else {
    if (bytes <= eager_limit_) ++stats_.eager_fallbacks;
    send_rendezvous(src, dst, tag, bytes, request);
  }
}

void Transport::send_eager(int src, int dst, int tag, std::int64_t bytes,
                           RequestId request) {
  ++stats_.eager_sends;
  eager_backlog_[pair_key(src, dst)] += bytes;

  const auto& p = link(src, dst);
  // Local completion: buffering costs only the per-message overhead.
  complete(src, request, p.overhead);

  const Envelope envelope{src, dst, tag, bytes};
  transfer(src, dst, bytes, [] {},
           [this, envelope] { on_eager_arrival(envelope); });
}

void Transport::on_eager_arrival(const Envelope& envelope) {
  RankState& s = state(envelope.dst);
  auto it = std::find_if(
      s.posted_recvs.begin(), s.posted_recvs.end(), [&](const PostedRecv& r) {
        return envelope.matches(r.src, r.tag);
      });
  if (it == s.posted_recvs.end()) {
    ++stats_.unexpected_eager;
    s.unexpected_eager.push_back(envelope);
    return;
  }
  const auto& p = link(envelope.src, envelope.dst);
  complete(envelope.dst, it->request, p.overhead);
  eager_backlog_[pair_key(envelope.src, envelope.dst)] -= envelope.bytes;
  s.posted_recvs.erase(it);
}

void Transport::send_rendezvous(int src, int dst, int tag, std::int64_t bytes,
                                RequestId request) {
  ++stats_.rendezvous_sends;
  const std::uint64_t uid = next_uid_++;
  rdv_sends_.emplace(uid, RdvSend{Envelope{src, dst, tag, bytes}, request, -1});
  ++state(src).outstanding_handshakes;

  const SimTime rts_arrival = inject(src, dst, 0);
  engine_.at(rts_arrival, [this, uid] { on_rts_arrival(uid); });
}

void Transport::on_rts_arrival(std::uint64_t send_uid) {
  const RdvSend& send = rdv_sends_.at(send_uid);
  RankState& s = state(send.envelope.dst);
  auto it = std::find_if(
      s.posted_recvs.begin(), s.posted_recvs.end(), [&](const PostedRecv& r) {
        return send.envelope.matches(r.src, r.tag);
      });
  if (it == s.posted_recvs.end()) {
    ++stats_.unexpected_rts;
    s.unexpected_rts.push_back(RtsRecord{send_uid, send.envelope});
    return;
  }
  const RequestId recv_request = it->request;
  s.posted_recvs.erase(it);
  issue_cts(send_uid, recv_request);
}

void Transport::issue_cts(std::uint64_t send_uid, RequestId recv_request) {
  RdvSend& send = rdv_sends_.at(send_uid);
  send.recv_request = recv_request;
  const SimTime cts_arrival = inject(send.envelope.dst, send.envelope.src, 0);
  engine_.at(cts_arrival, [this, send_uid] { on_cts_arrival(send_uid); });
}

void Transport::on_cts_arrival(std::uint64_t send_uid) {
  const RdvSend& send = rdv_sends_.at(send_uid);
  RankState& s = state(send.envelope.src);
  IW_ASSERT(s.outstanding_handshakes > 0,
            "CTS without an outstanding handshake");
  --s.outstanding_handshakes;

  const bool must_defer =
      options_.pipelining == RendezvousPipelining::deferred_push &&
      s.outstanding_handshakes > 0;
  if (must_defer) {
    ++stats_.deferred_pushes;
    s.deferred.push_back(send_uid);
    return;
  }

  // This CTS may have cleared the last outstanding handshake: flush every
  // held push first (their CTS arrived earlier), then this one. The NIC
  // serializes the injections in that order.
  if (s.outstanding_handshakes == 0 && !s.deferred.empty()) {
    std::vector<std::uint64_t> flush;
    flush.swap(s.deferred);
    for (const std::uint64_t uid : flush) push_data(uid);
  }
  push_data(send_uid);
}

void Transport::push_data(std::uint64_t send_uid) {
  const auto node = rdv_sends_.extract(send_uid);
  IW_ASSERT(!node.empty(), "pushing an unknown rendezvous send");
  const RdvSend send = node.mapped();
  IW_ASSERT(send.recv_request >= 0, "data push before the CTS matched");

  const int src = send.envelope.src;
  const int dst = send.envelope.dst;
  const RequestId send_request = send.send_request;
  const RequestId recv_request = send.recv_request;
  // The sender is done once the payload is fully handed off; the receiver
  // when it has arrived (plus the per-message overhead).
  transfer(src, dst, send.envelope.bytes,
           [this, src, send_request] {
             complete(src, send_request, Duration::zero());
           },
           [this, dst, recv_request, src] {
             complete(dst, recv_request, link(src, dst).overhead);
           });
}

void Transport::post_recv(int dst, int src, int tag, std::int64_t bytes,
                          RequestId request) {
  IW_REQUIRE(src != dst, "self-receives are not modeled");
  RankState& s = state(dst);

  // 1) Already-arrived eager payload?
  {
    auto it = std::find_if(
        s.unexpected_eager.begin(), s.unexpected_eager.end(),
        [&](const Envelope& e) { return e.matches(src, tag); });
    if (it != s.unexpected_eager.end()) {
      const auto& p = link(src, dst);
      complete(dst, request, p.overhead);
      eager_backlog_[pair_key(src, dst)] -= it->bytes;
      s.unexpected_eager.erase(it);
      return;
    }
  }

  // 2) A waiting rendezvous handshake?
  {
    auto it = std::find_if(
        s.unexpected_rts.begin(), s.unexpected_rts.end(),
        [&](const RtsRecord& r) { return r.envelope.matches(src, tag); });
    if (it != s.unexpected_rts.end()) {
      const std::uint64_t uid = it->send_uid;
      s.unexpected_rts.erase(it);
      issue_cts(uid, request);
      return;
    }
  }

  // 3) Nothing yet: queue the receive.
  s.posted_recvs.push_back(PostedRecv{src, tag, bytes, request});
}

}  // namespace iw::mpi
