#include "mpi/transport.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "mpi/process.hpp"
#include "support/error.hpp"

namespace iw::mpi {

Transport::Transport(sim::Engine& engine, const net::Topology& topo,
                     const net::FabricProfile& fabric,
                     const TransportConfig& config)
    : engine_(engine), topo_(topo) {
  reconfigure(fabric, config);
}

void Transport::reconfigure(const net::FabricProfile& fabric,
                            const TransportConfig& config) {
  // Reconcile the pools the previous run left behind before recycling them.
  // A mid-run stop() legitimately leaves in-flight rendezvous records, but
  // the free list, liveness shadow, and queue canaries must still agree.
  IW_AUDIT(audit());
  config.validate();
  // Fabric coverage: every link class this topology can produce must be
  // priced. Hierarchical topologies (switch/island tiers) paired with a
  // hand-built fabric that stops at inter_node would otherwise divide by a
  // zero bandwidth deep inside the first cross-switch transfer.
  for (int c = 0; c < net::kLinkClassCount; ++c) {
    const auto cls = static_cast<net::LinkClass>(c);
    IW_REQUIRE(!topo_.produces(cls) || fabric.params(cls).bandwidth_Bps > 0,
               "fabric profile '" + fabric.name + "' does not price the " +
                   net::to_string(cls) +
                   " link class, which this topology produces");
  }
  fabric_ = fabric;
  config_ = config;
  eager_limit_ = config_.eager_limit_for(fabric_.eager_limit_bytes);
  nranks_ = static_cast<std::size_t>(topo_.ranks());

  // Config-derived fast flags: every optional subsystem (finite NIC,
  // finite eager buffer, credit window) costs nothing when disabled.
  nic_limited_ = config_.nic.injection_depth > 0;
  nic_depth_ = config_.nic.injection_depth;
  nic_backlog_cap_ = config_.nic.backlog_capacity;
  track_credits_ = config_.eager.credit_window > 0;
  credit_window_ = config_.eager.credit_window;
  flavor_ = config_.rendezvous.flavor;

  if (ranks_.size() != nranks_) ranks_.resize(nranks_);
  for (RankState& s : ranks_) {
    s.posted_recvs.clear();
    s.unexpected_eager.clear();
    s.unexpected_rts.clear();
    s.nic_backlog.clear();
    s.nic_free = SimTime::zero();
    s.nic_inflight = 0;
    s.outstanding_handshakes = 0;
    s.deferred.clear();
  }
  rdv_slab_.clear();
  rdv_free_.clear();
#if IW_AUDIT_ENABLED
  rdv_live_.clear();
  nic_inflight_total_ = 0;
  nic_backlog_total_ = 0;
  credits_outstanding_ = 0;
#endif

  // Backlog accounting exists only to drive the finite-buffer fallback;
  // under the default infinite capacity the steady-state path skips it
  // entirely (no table, no per-message arithmetic). Same for credits.
  track_backlog_ = config_.eager.buffer_capacity !=
                   std::numeric_limits<std::int64_t>::max();
  if (track_backlog_) {
    eager_backlog_.assign(nranks_ * nranks_, 0);
  } else {
    eager_backlog_.clear();
  }
  if (track_credits_) {
    eager_credits_.assign(nranks_ * nranks_, 0);
  } else {
    eager_credits_.clear();
  }

  procs_ = nullptr;
  on_complete_ = nullptr;
  domains_by_rank_.clear();
  use_domains_ = false;
  tracer_ = nullptr;
  stats_ = Stats{};

  // Post-condition: a reconfigured transport holds no protocol state — the
  // pool accounting must balance back to zero in-flight records.
  IW_ASSERT(pool_stats().rdv_in_flight == 0,
            "reconfigure() left rendezvous records in flight");
  IW_ASSERT(pool_stats().nic_backlog_depth == 0 &&
                pool_stats().nic_inflight == 0,
            "reconfigure() left NIC budget state behind");
  IW_AUDIT(audit());
}

void Transport::set_processes(Process* const* by_rank) { procs_ = by_rank; }

void Transport::set_completion_handler(CompletionFn fn) {
  on_complete_ = std::move(fn);
}

void Transport::set_memory_domains(
    const std::vector<memory::BandwidthDomain*>& by_rank) {
  IW_REQUIRE(by_rank.empty() || by_rank.size() == nranks_,
             "memory-domain table must have one entry per rank");
  domains_by_rank_.assign(by_rank.begin(), by_rank.end());
  use_domains_ = !domains_by_rank_.empty();
}

Transport::PoolStats Transport::pool_stats() const {
  PoolStats p;
  p.allocations = pool_allocations_;
  for (const RankState& s : ranks_) {
    p.allocations += s.posted_recvs.grows() + s.unexpected_eager.grows() +
                     s.unexpected_rts.grows() + s.nic_backlog.grows();
    p.nic_backlog_depth += s.nic_backlog.size();
    p.nic_inflight += static_cast<std::size_t>(s.nic_inflight);
  }
  p.rdv_slab_capacity = rdv_slab_.capacity();
  p.rdv_in_flight = rdv_slab_.size() - rdv_free_.size();
  return p;
}

std::uint32_t Transport::acquire_rdv() {
  if (!rdv_free_.empty()) {
    const std::uint32_t slot = rdv_free_.back();
    rdv_free_.pop_back();
    IW_ASSERT(rdv_live_[slot] == 0, "free list handed out a live slot");
    IW_AUDIT(rdv_live_[slot] = 1);
    return slot;
  }
  if (rdv_slab_.size() == rdv_slab_.capacity()) ++pool_allocations_;
  rdv_slab_.emplace_back();
  IW_AUDIT(rdv_live_.push_back(1));
  return static_cast<std::uint32_t>(rdv_slab_.size() - 1);
}

void Transport::release_rdv(std::uint32_t slot) {
  assert_rdv_live(slot, "release_rdv");
  IW_AUDIT(rdv_live_[slot] = 0);
  // Poison the vacated record so a stale slot index riding in a not-yet-
  // fired closure reads loud defaults instead of plausible stale state.
  IW_AUDIT(rdv_slab_[slot] = RdvSend{});
  push_counted(rdv_free_, slot);
}

void Transport::audit() const {
#if IW_AUDIT_ENABLED
  IW_ASSERT(rdv_live_.size() == rdv_slab_.size(),
            "liveness shadow out of step with the rendezvous slab");
  std::vector<std::uint8_t> on_free_list(rdv_slab_.size(), 0);
  for (const std::uint32_t slot : rdv_free_) {
    IW_ASSERT(slot < rdv_slab_.size(),
              "rendezvous free list references a slot off the slab");
    IW_ASSERT(!on_free_list[slot], "rendezvous slot freed twice");
    IW_ASSERT(rdv_live_[slot] == 0, "live rendezvous slot on the free list");
    on_free_list[slot] = 1;
  }
  std::size_t live = 0;
  for (const std::uint8_t l : rdv_live_) live += l;
  // The same reconciliation pool_stats() publishes: every slab slot is
  // either free or in flight, never both, never neither.
  IW_ASSERT(live + rdv_free_.size() == rdv_slab_.size(),
            "rendezvous accounting broken: live + free != slab extent");
  IW_ASSERT(pool_stats().rdv_in_flight == live,
            "pool_stats in-flight count disagrees with the liveness shadow");
  std::int64_t inflight_sum = 0;
  std::int64_t backlog_sum = 0;
  for (const RankState& s : ranks_) {
    s.posted_recvs.audit();
    s.unexpected_eager.audit();
    s.unexpected_rts.audit();
    s.nic_backlog.audit();
    IW_ASSERT(s.outstanding_handshakes >= 0,
              "negative outstanding handshake count");
    for (const std::uint32_t slot : s.deferred)
      assert_rdv_live(slot, "deferred push list");
    for (std::size_t i = 0; i < s.unexpected_rts.size(); ++i)
      assert_rdv_live(s.unexpected_rts[i].slot, "unexpected RTS queue");
    // NIC budget bounds: in-flight injections stay inside [0, depth], and
    // budget state exists only under a finite-injection configuration.
    IW_ASSERT(s.nic_inflight >= 0, "negative in-flight injection count");
    if (nic_limited_) {
      IW_ASSERT(s.nic_inflight <= nic_depth_,
                "in-flight injections exceed the NIC budget");
      IW_ASSERT(nic_backlog_cap_ == 0 ||
                    s.nic_backlog.size() <=
                        static_cast<std::size_t>(nic_backlog_cap_),
                "NIC retry backlog exceeds its configured capacity");
    } else {
      IW_ASSERT(s.nic_inflight == 0 && s.nic_backlog.empty(),
                "NIC budget state on an unbounded-injection transport");
    }
    for (std::size_t i = 0; i < s.nic_backlog.size(); ++i) {
      const BacklogEntry& e = s.nic_backlog[i];
      if (e.kind == BacklogEntry::Kind::rts)
        assert_rdv_live(e.slot, "NIC retry backlog");
    }
    inflight_sum += s.nic_inflight;
    backlog_sum += static_cast<std::int64_t>(s.nic_backlog.size());
  }
  // Shadow-total reconciliation: the incrementally-maintained totals must
  // agree with a fresh walk of the structures — a mismatch means a
  // transaction site missed its increment or decrement.
  IW_ASSERT(inflight_sum == nic_inflight_total_,
            "in-flight injection total disagrees with its shadow counter");
  IW_ASSERT(backlog_sum == nic_backlog_total_,
            "NIC backlog total disagrees with its shadow counter");
  if (track_credits_) {
    std::int64_t credit_sum = 0;
    for (const int c : eager_credits_) {
      IW_ASSERT(c >= 0 && c <= credit_window_,
                "per-pair eager credit count outside [0, window]");
      credit_sum += c;
    }
    IW_ASSERT(credit_sum == credits_outstanding_,
              "outstanding eager credits disagree with their shadow counter");
  } else {
    IW_ASSERT(credits_outstanding_ == 0,
              "credit shadow counter moved with credits disabled");
  }
#endif
}

void Transport::transfer(net::LinkClass cls, int src, int dst,
                         std::int64_t bytes, sim::EventFn on_injected,
                         sim::EventFn on_arrival, bool counted) {
  const bool same_node = cls == net::LinkClass::intra_socket ||
                         cls == net::LinkClass::inter_socket;
  memory::BandwidthDomain* src_domain = same_node ? domain_of(src) : nullptr;

  if (src_domain == nullptr) {
    // NIC path: serialize on the sender's NIC, arrive after the latency.
    // An empty on_injected (eager sends complete locally, before the
    // transfer) or on_arrival (one-sided puts complete the receiver via
    // the FIN instead) schedules nothing.
    const net::LinkParams& p = fabric_.params(cls);
    const SimTime arrival =
        counted ? inject_counted(p, src, bytes) : inject(p, src, bytes);
    if (on_injected) engine_.at(arrival - p.latency, std::move(on_injected));
    if (on_arrival) engine_.at(arrival, std::move(on_arrival));
    return;
  }

  // Memory path: source-side buffer copy, then destination-side copy-out,
  // each drawing on the owning socket's memory bandwidth (they contend with
  // computation — the effect the Eq. 1 model ignores). The arrival
  // continuation is moved stage to stage, not shared. One-sided puts pass
  // an empty arrival: the copy-out still charges the destination socket's
  // bandwidth, it just has nothing to run afterwards.
  memory::BandwidthDomain* dst_domain = domain_of(dst);
  const Duration latency = fabric_.params(cls).latency;
  src_domain->submit(
      bytes, [this, bytes, dst_domain, latency,
              injected = std::move(on_injected),
              arrival = std::move(on_arrival)]() mutable {
        if (injected) injected();
        engine_.after(latency, [bytes, dst_domain,
                                arrival = std::move(arrival)]() mutable {
          if (dst_domain != nullptr) {
            dst_domain->submit(bytes, arrival ? std::move(arrival)
                                              : sim::EventFn([] {}));
          } else if (arrival) {
            arrival();
          }
        });
      });
}

const net::LinkParams& Transport::link(int a, int b) const {
  return fabric_.params(topo_.classify(a, b));
}

WireProtocol Transport::protocol_for(int src, int dst,
                                     std::int64_t bytes) const {
  if (bytes > eager_limit_) return WireProtocol::rendezvous;
  if (track_backlog_ || track_credits_) {
    // Public entry point: the flat tables need the bounds check the old
    // map lookup never did (post_send re-checks, but callers like
    // Cluster::message_time reach here directly).
    check_ranks(src, dst);
    if (track_backlog_ &&
        eager_backlog(src, dst) + bytes > config_.eager.buffer_capacity)
      return WireProtocol::rendezvous;
    if (track_credits_ &&
        eager_credits_[backlog_index(src, dst)] >= credit_window_)
      return WireProtocol::rendezvous;
  }
  return WireProtocol::eager;
}

Duration Transport::eager_transfer_time(int src, int dst,
                                        std::int64_t bytes) const {
  const auto& p = link(src, dst);
  return p.overhead + p.gap + p.transfer_time(bytes) + p.overhead;
}

Duration Transport::rendezvous_transfer_time(int src, int dst,
                                             std::int64_t bytes) const {
  const auto& p = link(src, dst);
  // Handshake: RTS (gap + latency) + CTS/RTR-or-GET (gap + latency) — two
  // control messages in every flavor. The payload leg then differs:
  switch (flavor_) {
    case RendezvousFlavor::rdma_put:
      // One-sided put followed by the FIN control message that completes
      // the receiver: the FIN is injected behind the payload (gap) and its
      // arrival supersedes the payload's own wire latency. No receive-side
      // CPU overhead.
      return p.overhead + (p.gap + p.control_time()) * 2 + p.gap +
             p.payload_time(bytes) + p.gap + p.control_time();
    case RendezvousFlavor::rdma_get:
      // The source NIC streams the payload; the receiver completes at
      // arrival with no CPU overhead (the trailing FIN only retires the
      // sender's buffer and is off the critical path).
      return p.overhead + (p.gap + p.control_time()) * 2 + p.gap +
             p.transfer_time(bytes);
    case RendezvousFlavor::two_sided:
      break;
  }
  // Two-sided: data push plus endpoint overheads on the payload.
  return p.overhead + (p.gap + p.control_time()) * 2 + p.gap +
         p.transfer_time(bytes) + p.overhead;
}

SimTime Transport::inject(const net::LinkParams& p, int src,
                          std::int64_t payload_bytes) {
  RankState& s = state(src);
  const SimTime start = std::max(engine_.now(), s.nic_free);
  Duration busy = p.gap;
  if (payload_bytes > 0) {
    // The NIC is busy only for the injection itself, not the wire latency.
    busy += p.payload_time(payload_bytes);
  }
  s.nic_free = start + busy;
  return s.nic_free + p.latency;
}

SimTime Transport::inject_counted(const net::LinkParams& p, int src,
                                  std::int64_t payload_bytes) {
  const SimTime arrival = inject(p, src, payload_bytes);
  if (nic_limited_) {
    RankState& s = state(src);
    IW_ASSERT(s.nic_inflight < nic_depth_,
              "counted injection posted past the NIC budget");
    ++s.nic_inflight;
    IW_AUDIT(++nic_inflight_total_);
    // The budget slot frees when the NIC finishes serializing this message
    // (injection end = arrival - latency = the rank's new nic_free).
    engine_.at(s.nic_free, [this, src] { on_nic_drain(src); });
  }
  return arrival;
}

void Transport::backlog_push(int src, BacklogEntry entry) {
  RankState& s = state(src);
  IW_CHECK(nic_backlog_cap_ == 0 ||
               s.nic_backlog.size() <
                   static_cast<std::size_t>(nic_backlog_cap_),
           "NIC retry backlog overflow at rank " + std::to_string(src) +
               ": raise NicModel.backlog_capacity (or injection_depth), or "
               "throttle the workload");
  ++stats_.nic_backlogged;
  IW_AUDIT(++nic_backlog_total_);
  if (entry.kind == BacklogEntry::Kind::eager) {
    trace(obs::TraceEvent::kNicPark, src, entry.envelope.dst,
          entry.envelope.bytes);
  } else {
    trace(obs::TraceEvent::kNicPark, src, rdv_slab_[entry.slot].envelope.dst,
          rdv_slab_[entry.slot].envelope.bytes, entry.slot);
  }
  s.nic_backlog.push_back(entry);
}

void Transport::on_nic_drain(int src) {
  RankState& s = state(src);
  IW_ASSERT(s.nic_inflight > 0, "NIC drain without an in-flight injection");
  --s.nic_inflight;
  IW_AUDIT(--nic_inflight_total_);
  trace(obs::TraceEvent::kNicDrain, src);

  // Dispatch backlogged sends in FIFO order while budget remains. Each
  // dispatch is itself a counted injection, so a depth-1 NIC re-posts
  // exactly one entry per drain.
  while (!s.nic_backlog.empty() && s.nic_inflight < nic_depth_) {
    const BacklogEntry entry = s.nic_backlog.front();
    s.nic_backlog.pop_front();
    IW_AUDIT(--nic_backlog_total_);
    if (entry.kind == BacklogEntry::Kind::eager) {
      const net::LinkClass cls =
          topo_.classify(entry.envelope.src, entry.envelope.dst);
      // The deferred local completion: the sender is charged its overhead
      // only now, when the message actually reaches the NIC — the coupling
      // that distinguishes a finite-injection NIC from the ideal one.
      const Duration overhead =
          send_eager(cls, entry.envelope.src, entry.envelope.dst,
                     entry.envelope.tag, entry.envelope.bytes);
      complete(src, entry.request, overhead);
    } else {
      assert_rdv_live(entry.slot, "NIC backlog drain");
      const Envelope& env = rdv_slab_[entry.slot].envelope;
      send_rts(topo_.classify(env.src, env.dst), entry.slot);
    }
  }
}

void Transport::deliver(int rank, RequestId request) {
  IW_ASSERT(on_complete_ != nullptr, "completion handler not set");
  on_complete_(rank, request);
}

void Transport::complete(int rank, RequestId request, Duration delay) {
  // Direct-wired mode: the finish time is known now, so tell the process
  // the request settles at now + delay — no completion event at all. The
  // CompletionFn fallback (tests, harnesses without Process objects) keeps
  // the event-delivered semantics.
  if (procs_ != nullptr) {
    procs_[rank]->on_request_settles_at(request, engine_.now() + delay);
    return;
  }
  engine_.after(delay,
                [this, rank, request] { deliver(rank, request); });
}

std::optional<Duration> Transport::post_send(int src, int dst, int tag,
                                             std::int64_t bytes,
                                             RequestId request) {
  IW_REQUIRE(src != dst, "self-sends are not modeled");
  check_ranks(src, dst);
  const net::LinkClass cls = topo_.classify(src, dst);
  trace(obs::TraceEvent::kPostSend, src, dst, bytes);

  // Protocol decision, with the dynamic fallbacks split out so each gets
  // its own counter (same order as protocol_for, which must stay in step).
  const bool eager_sized = bytes <= eager_limit_;
  bool buffer_full = false;
  bool no_credit = false;
  if (eager_sized) {
    if (track_backlog_ &&
        eager_backlog(src, dst) + bytes > config_.eager.buffer_capacity) {
      buffer_full = true;
    } else if (track_credits_ &&
               eager_credits_[backlog_index(src, dst)] >= credit_window_) {
      no_credit = true;
    }
  }

  if (eager_sized && !buffer_full && !no_credit) {
    // Protocol accounting is charged at post time (the decision point), so
    // a NIC-backlogged send influences later protocol decisions exactly
    // like an injected one and the drain path never double-counts.
    ++stats_.eager_sends;
    if (track_backlog_) eager_backlog_[backlog_index(src, dst)] += bytes;
    if (track_credits_) {
      ++eager_credits_[backlog_index(src, dst)];
      IW_AUDIT(++credits_outstanding_);
      trace(obs::TraceEvent::kCreditCharge, src, dst, bytes);
    }
    if (nic_limited_ && nic_path(cls, src) && nic_saturated(state(src))) {
      backlog_push(src, BacklogEntry{BacklogEntry::Kind::eager,
                                     Envelope{src, dst, tag, bytes}, request,
                                     0});
      return std::nullopt;  // completes through the wiring at drain time
    }
    return send_eager(cls, src, dst, tag, bytes);
  }

  if (buffer_full) ++stats_.eager_fallbacks;
  if (no_credit) ++stats_.credit_stalls;
  if (buffer_full || no_credit)
    trace(obs::TraceEvent::kCreditDemotion, src, dst, bytes);
  send_rendezvous(cls, src, dst, tag, bytes, request);
  return std::nullopt;
}

void Transport::post_ghost_send(int src, int dst, int tag,
                                std::int64_t bytes) {
  IW_REQUIRE(src != dst, "self-sends are not modeled");
  check_ranks(src, dst);
  IW_REQUIRE(!nic_limited_ && !track_backlog_ && !track_credits_,
             "ghost sends require the ideal NIC and unbounded eager policy");
  IW_REQUIRE(bytes <= eager_limit_,
             "ghost sends must be eager-sized (the planner gates on this)");
  const net::LinkClass cls = topo_.classify(src, dst);
  trace(obs::TraceEvent::kPostSend, src, dst, bytes);
  ++stats_.eager_sends;
  // The returned local-completion delay is dropped: the ghost's own
  // timeline is analytic, only the arrival side matters here.
  (void)send_eager(cls, src, dst, tag, bytes);
}

Duration Transport::send_eager(net::LinkClass cls, int src, int dst, int tag,
                               std::int64_t bytes) {
  const Duration overhead = fabric_.params(cls).overhead;
  const Envelope envelope{src, dst, tag, bytes};
  trace(obs::TraceEvent::kEagerSend, src, dst, bytes);
  // The arrival closure carries the link overhead, so a matched arrival
  // never re-classifies the link. The injection is counted against the
  // finite NIC budget (a no-op on the memory path and the ideal NIC).
  transfer(cls, src, dst, bytes, nullptr,
           [this, envelope, overhead] { on_eager_arrival(envelope, overhead); },
           /*counted=*/nic_limited_);
  // Local completion: buffering costs only the per-message overhead. The
  // caller folds this into its own wait accounting — no completion event.
  return overhead;
}

void Transport::on_eager_arrival(const Envelope& envelope, Duration overhead) {
  RankState& s = state(envelope.dst);
  trace(obs::TraceEvent::kEagerRecv, envelope.dst, envelope.src,
        envelope.bytes);
  auto& q = s.posted_recvs;
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (!envelope.matches(q[i].src, q[i].tag)) continue;
    trace(obs::TraceEvent::kMatch, envelope.dst, envelope.src, envelope.bytes);
    complete(envelope.dst, q[i].request, overhead);
    if (track_backlog_)
      eager_backlog_[backlog_index(envelope.src, envelope.dst)] -=
          envelope.bytes;
    if (track_credits_) return_credit(envelope.src, envelope.dst);
    q.erase(i);
    return;
  }
  ++stats_.unexpected_eager;
  trace(obs::TraceEvent::kUnexpectedEager, envelope.dst, envelope.src,
        envelope.bytes);
  s.unexpected_eager.push_back(envelope);
}

void Transport::send_rendezvous(net::LinkClass cls, int src, int dst, int tag,
                                std::int64_t bytes, RequestId request) {
  ++stats_.rendezvous_sends;
  const std::uint32_t slot = acquire_rdv();
  rdv_slab_[slot] = RdvSend{Envelope{src, dst, tag, bytes}, request, -1};
  ++state(src).outstanding_handshakes;

  // The RTS is a sender-initiated injection, so it is subject to the
  // finite NIC budget (control messages always use the NIC path).
  if (nic_limited_ && nic_saturated(state(src))) {
    backlog_push(src, BacklogEntry{BacklogEntry::Kind::rts, Envelope{},
                                   -1, slot});
    return;
  }
  send_rts(cls, slot);
}

void Transport::send_rts(net::LinkClass cls, std::uint32_t slot) {
  assert_rdv_live(slot, "send_rts");
  const int src = rdv_slab_[slot].envelope.src;
  trace(obs::TraceEvent::kRtsSend, src, rdv_slab_[slot].envelope.dst,
        rdv_slab_[slot].envelope.bytes, slot);
  const SimTime rts_arrival = nic_limited_
                                  ? inject_counted(fabric_.params(cls), src, 0)
                                  : inject(fabric_.params(cls), src, 0);
  engine_.at(rts_arrival, [this, slot] { on_rts_arrival(slot); });
}

void Transport::on_rts_arrival(std::uint32_t slot) {
  assert_rdv_live(slot, "on_rts_arrival");
  const Envelope envelope = rdv_slab_[slot].envelope;
  RankState& s = state(envelope.dst);
  trace(obs::TraceEvent::kRtsRecv, envelope.dst, envelope.src, envelope.bytes,
        slot);
  auto& q = s.posted_recvs;
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (!envelope.matches(q[i].src, q[i].tag)) continue;
    const RequestId recv_request = q[i].request;
    trace(obs::TraceEvent::kMatch, envelope.dst, envelope.src, envelope.bytes,
          slot);
    q.erase(i);
    if (flavor_ == RendezvousFlavor::rdma_get) {
      issue_get(slot, recv_request);
    } else {
      issue_cts(slot, recv_request);
    }
    return;
  }
  ++stats_.unexpected_rts;
  trace(obs::TraceEvent::kUnexpectedRts, envelope.dst, envelope.src,
        envelope.bytes, slot);
  s.unexpected_rts.push_back(RtsRecord{slot, envelope});
}

void Transport::issue_cts(std::uint32_t slot, RequestId recv_request) {
  assert_rdv_live(slot, "issue_cts");
  RdvSend& send = rdv_slab_[slot];
  send.recv_request = recv_request;
  trace(obs::TraceEvent::kCtsSend, send.envelope.dst, send.envelope.src,
        send.envelope.bytes, slot);
  // The CTS travels dst -> src; the link class is symmetric. Under
  // rdma_put this same control message is the RTR carrying the target
  // address and remote key. Protocol responses ride reserved slots and are
  // exempt from the injection budget.
  const SimTime cts_arrival =
      inject(link(send.envelope.dst, send.envelope.src), send.envelope.dst, 0);
  engine_.at(cts_arrival, [this, slot] { on_cts_arrival(slot); });
}

void Transport::on_cts_arrival(std::uint32_t slot) {
  assert_rdv_live(slot, "on_cts_arrival");
  RankState& s = state(rdv_slab_[slot].envelope.src);
  trace(obs::TraceEvent::kCtsRecv, rdv_slab_[slot].envelope.src,
        rdv_slab_[slot].envelope.dst, rdv_slab_[slot].envelope.bytes, slot);
  IW_ASSERT(s.outstanding_handshakes > 0,
            "CTS without an outstanding handshake");
  --s.outstanding_handshakes;

  if (flavor_ == RendezvousFlavor::rdma_put) {
    // One-sided write: the NIC executes the put as soon as the RTR lands —
    // it is never held behind the sender's other handshakes.
    put_data(slot);
    return;
  }

  const bool must_defer =
      config_.rendezvous.pipelining == RendezvousPipelining::deferred_push &&
      s.outstanding_handshakes > 0;
  if (must_defer) {
    ++stats_.deferred_pushes;
    push_counted(s.deferred, slot);
    return;
  }

  // This CTS may have cleared the last outstanding handshake: flush every
  // held push first (their CTS arrived earlier), then this one. The NIC
  // serializes the injections in that order. The flush stages through a
  // pooled scratch buffer, so draining allocates nothing once warm.
  if (s.outstanding_handshakes == 0 && !s.deferred.empty()) {
    deferred_scratch_.swap(s.deferred);  // s.deferred is now empty, pooled
    for (const std::uint32_t held : deferred_scratch_) push_data(held);
    deferred_scratch_.clear();
  }
  push_data(slot);
}

void Transport::push_data(std::uint32_t slot) {
  assert_rdv_live(slot, "push_data");
  const RdvSend send = rdv_slab_[slot];
  release_rdv(slot);
  IW_ASSERT(send.recv_request >= 0, "data push before the CTS matched");

  const int src = send.envelope.src;
  const int dst = send.envelope.dst;
  const std::int64_t bytes = send.envelope.bytes;
  const RequestId send_request = send.send_request;
  const RequestId recv_request = send.recv_request;
  const net::LinkClass cls = topo_.classify(src, dst);
  const Duration overhead = fabric_.params(cls).overhead;
  trace(obs::TraceEvent::kPushSend, src, dst, bytes);
  // The sender is done once the payload is fully handed off; the receiver
  // when it has arrived (plus the per-message overhead).
  transfer(cls, src, dst, bytes,
           [this, src, send_request] {
             complete(src, send_request, Duration::zero());
           },
           [this, src, dst, bytes, recv_request, overhead] {
             trace(obs::TraceEvent::kPushRecv, dst, src, bytes);
             complete(dst, recv_request, overhead);
           });
}

void Transport::put_data(std::uint32_t slot) {
  assert_rdv_live(slot, "put_data");
  const RdvSend send = rdv_slab_[slot];
  release_rdv(slot);
  IW_ASSERT(send.recv_request >= 0, "one-sided put before the RTR matched");
  ++stats_.rdma_puts;

  const int src = send.envelope.src;
  const int dst = send.envelope.dst;
  const RequestId send_request = send.send_request;
  const RequestId recv_request = send.recv_request;
  const net::LinkClass cls = topo_.classify(src, dst);
  trace(obs::TraceEvent::kPutSend, src, dst, send.envelope.bytes);
  // One-sided put: the payload lands straight in the receive buffer (no
  // arrival continuation, no receive-side overhead). The sender completes
  // at hand-off and chases the payload with a FIN control message — the
  // FIN's arrival is what completes the receiver.
  transfer(cls, src, dst, send.envelope.bytes,
           [this, src, dst, send_request, recv_request, cls] {
             complete(src, send_request, Duration::zero());
             trace(obs::TraceEvent::kFinSend, src, dst);
             const SimTime fin_arrival =
                 inject(fabric_.params(cls), src, 0);
             engine_.at(fin_arrival, [this, src, dst, recv_request] {
               trace(obs::TraceEvent::kFinRecv, dst, src);
               complete(dst, recv_request, Duration::zero());
             });
           },
           /*on_arrival=*/nullptr);
}

void Transport::issue_get(std::uint32_t slot, RequestId recv_request) {
  assert_rdv_live(slot, "issue_get");
  RdvSend& send = rdv_slab_[slot];
  send.recv_request = recv_request;
  trace(obs::TraceEvent::kGetSend, send.envelope.dst, send.envelope.src,
        send.envelope.bytes, slot);
  // The GET request travels dst -> src carrying the rkey the RTS
  // advertised; like the CTS it is a budget-exempt protocol response.
  const SimTime get_arrival =
      inject(link(send.envelope.dst, send.envelope.src), send.envelope.dst, 0);
  engine_.at(get_arrival, [this, slot] { on_get_arrival(slot); });
}

void Transport::on_get_arrival(std::uint32_t slot) {
  assert_rdv_live(slot, "on_get_arrival");
  const RdvSend send = rdv_slab_[slot];
  release_rdv(slot);
  IW_ASSERT(send.recv_request >= 0, "one-sided get before the RTS matched");
  ++stats_.rdma_gets;

  RankState& s = state(send.envelope.src);
  IW_ASSERT(s.outstanding_handshakes > 0,
            "GET request without an outstanding handshake");
  --s.outstanding_handshakes;

  const int src = send.envelope.src;
  const int dst = send.envelope.dst;
  const std::int64_t bytes = send.envelope.bytes;
  const RequestId send_request = send.send_request;
  const RequestId recv_request = send.recv_request;
  const net::LinkClass cls = topo_.classify(src, dst);
  // The source NIC streams the payload back without CPU involvement: the
  // receiver completes at arrival (no overhead) and returns a FIN that
  // retires the sender's buffer.
  transfer(cls, src, dst, bytes,
           /*on_injected=*/nullptr,
           [this, src, dst, bytes, send_request, recv_request, cls] {
             trace(obs::TraceEvent::kGetRecv, dst, src, bytes);
             complete(dst, recv_request, Duration::zero());
             trace(obs::TraceEvent::kFinSend, dst, src);
             const SimTime fin_arrival =
                 inject(fabric_.params(cls), dst, 0);
             engine_.at(fin_arrival, [this, src, dst, send_request] {
               trace(obs::TraceEvent::kFinRecv, src, dst);
               complete(src, send_request, Duration::zero());
             });
           });
}

void Transport::post_recv(int dst, int src, int tag, std::int64_t bytes,
                          RequestId request) {
  IW_REQUIRE(src != dst, "self-receives are not modeled");
  check_ranks(src, dst);
  RankState& s = state(dst);
  trace(obs::TraceEvent::kPostRecv, dst, src, bytes);

  // 1) Already-arrived eager payload?
  auto& ue = s.unexpected_eager;
  for (std::size_t i = 0; i < ue.size(); ++i) {
    if (!ue[i].matches(src, tag)) continue;
    const auto& p = link(src, dst);
    trace(obs::TraceEvent::kMatch, dst, src, ue[i].bytes);
    complete(dst, request, p.overhead);
    if (track_backlog_)
      eager_backlog_[backlog_index(src, dst)] -= ue[i].bytes;
    if (track_credits_) return_credit(src, dst);
    ue.erase(i);
    return;
  }

  // 2) A waiting rendezvous handshake?
  auto& ur = s.unexpected_rts;
  for (std::size_t i = 0; i < ur.size(); ++i) {
    if (!ur[i].envelope.matches(src, tag)) continue;
    const std::uint32_t slot = ur[i].slot;
    trace(obs::TraceEvent::kMatch, dst, src, ur[i].envelope.bytes, slot);
    ur.erase(i);
    if (flavor_ == RendezvousFlavor::rdma_get) {
      issue_get(slot, request);
    } else {
      issue_cts(slot, request);
    }
    return;
  }

  // 3) Nothing yet: queue the receive.
  s.posted_recvs.push_back(PostedRecv{src, tag, bytes, request});
}

}  // namespace iw::mpi
