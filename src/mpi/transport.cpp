#include "mpi/transport.hpp"

#include <algorithm>
#include <utility>

#include "mpi/process.hpp"
#include "support/error.hpp"

namespace iw::mpi {

Transport::Transport(sim::Engine& engine, const net::Topology& topo,
                     const net::FabricProfile& fabric, Options options)
    : engine_(engine), topo_(topo) {
  reconfigure(fabric, options);
}

void Transport::reconfigure(const net::FabricProfile& fabric,
                            Options options) {
  // Reconcile the pools the previous run left behind before recycling them.
  // A mid-run stop() legitimately leaves in-flight rendezvous records, but
  // the free list, liveness shadow, and queue canaries must still agree.
  IW_AUDIT(audit());
  fabric_ = fabric;
  options_ = options;
  eager_limit_ = options.eager_limit_override >= 0
                     ? options.eager_limit_override
                     : fabric_.eager_limit_bytes;
  nranks_ = static_cast<std::size_t>(topo_.ranks());

  if (ranks_.size() != nranks_) ranks_.resize(nranks_);
  for (RankState& s : ranks_) {
    s.posted_recvs.clear();
    s.unexpected_eager.clear();
    s.unexpected_rts.clear();
    s.nic_free = SimTime::zero();
    s.outstanding_handshakes = 0;
    s.deferred.clear();
  }
  rdv_slab_.clear();
  rdv_free_.clear();
#if IW_AUDIT_ENABLED
  rdv_live_.clear();
#endif

  // Backlog accounting exists only to drive the finite-buffer fallback;
  // under the default infinite capacity the steady-state path skips it
  // entirely (no table, no per-message arithmetic).
  track_backlog_ = options_.eager_buffer_capacity !=
                   std::numeric_limits<std::int64_t>::max();
  if (track_backlog_) {
    eager_backlog_.assign(nranks_ * nranks_, 0);
  } else {
    eager_backlog_.clear();
  }

  procs_ = nullptr;
  on_complete_ = nullptr;
  domains_by_rank_.clear();
  use_domains_ = false;
  stats_ = Stats{};

  // Post-condition: a reconfigured transport holds no protocol state — the
  // pool accounting must balance back to zero in-flight records.
  IW_ASSERT(pool_stats().rdv_in_flight == 0,
            "reconfigure() left rendezvous records in flight");
  IW_AUDIT(audit());
}

void Transport::set_processes(Process* const* by_rank) { procs_ = by_rank; }

void Transport::set_completion_handler(CompletionFn fn) {
  on_complete_ = std::move(fn);
}

void Transport::set_memory_domains(
    const std::vector<memory::BandwidthDomain*>& by_rank) {
  IW_REQUIRE(by_rank.empty() || by_rank.size() == nranks_,
             "memory-domain table must have one entry per rank");
  domains_by_rank_.assign(by_rank.begin(), by_rank.end());
  use_domains_ = !domains_by_rank_.empty();
}

Transport::PoolStats Transport::pool_stats() const {
  PoolStats p;
  p.allocations = pool_allocations_;
  for (const RankState& s : ranks_)
    p.allocations += s.posted_recvs.grows() + s.unexpected_eager.grows() +
                     s.unexpected_rts.grows();
  p.rdv_slab_capacity = rdv_slab_.capacity();
  p.rdv_in_flight = rdv_slab_.size() - rdv_free_.size();
  return p;
}

std::uint32_t Transport::acquire_rdv() {
  if (!rdv_free_.empty()) {
    const std::uint32_t slot = rdv_free_.back();
    rdv_free_.pop_back();
    IW_ASSERT(rdv_live_[slot] == 0, "free list handed out a live slot");
    IW_AUDIT(rdv_live_[slot] = 1);
    return slot;
  }
  if (rdv_slab_.size() == rdv_slab_.capacity()) ++pool_allocations_;
  rdv_slab_.emplace_back();
  IW_AUDIT(rdv_live_.push_back(1));
  return static_cast<std::uint32_t>(rdv_slab_.size() - 1);
}

void Transport::release_rdv(std::uint32_t slot) {
  assert_rdv_live(slot, "release_rdv");
  IW_AUDIT(rdv_live_[slot] = 0);
  // Poison the vacated record so a stale slot index riding in a not-yet-
  // fired closure reads loud defaults instead of plausible stale state.
  IW_AUDIT(rdv_slab_[slot] = RdvSend{});
  push_counted(rdv_free_, slot);
}

void Transport::audit() const {
#if IW_AUDIT_ENABLED
  IW_ASSERT(rdv_live_.size() == rdv_slab_.size(),
            "liveness shadow out of step with the rendezvous slab");
  std::vector<std::uint8_t> on_free_list(rdv_slab_.size(), 0);
  for (const std::uint32_t slot : rdv_free_) {
    IW_ASSERT(slot < rdv_slab_.size(),
              "rendezvous free list references a slot off the slab");
    IW_ASSERT(!on_free_list[slot], "rendezvous slot freed twice");
    IW_ASSERT(rdv_live_[slot] == 0, "live rendezvous slot on the free list");
    on_free_list[slot] = 1;
  }
  std::size_t live = 0;
  for (const std::uint8_t l : rdv_live_) live += l;
  // The same reconciliation pool_stats() publishes: every slab slot is
  // either free or in flight, never both, never neither.
  IW_ASSERT(live + rdv_free_.size() == rdv_slab_.size(),
            "rendezvous accounting broken: live + free != slab extent");
  IW_ASSERT(pool_stats().rdv_in_flight == live,
            "pool_stats in-flight count disagrees with the liveness shadow");
  for (const RankState& s : ranks_) {
    s.posted_recvs.audit();
    s.unexpected_eager.audit();
    s.unexpected_rts.audit();
    IW_ASSERT(s.outstanding_handshakes >= 0,
              "negative outstanding handshake count");
    for (const std::uint32_t slot : s.deferred)
      assert_rdv_live(slot, "deferred push list");
    for (std::size_t i = 0; i < s.unexpected_rts.size(); ++i)
      assert_rdv_live(s.unexpected_rts[i].slot, "unexpected RTS queue");
  }
#endif
}

void Transport::transfer(net::LinkClass cls, int src, int dst,
                         std::int64_t bytes, sim::EventFn on_injected,
                         sim::EventFn on_arrival) {
  const bool same_node = cls == net::LinkClass::intra_socket ||
                         cls == net::LinkClass::inter_socket;
  memory::BandwidthDomain* src_domain = same_node ? domain_of(src) : nullptr;

  if (src_domain == nullptr) {
    // NIC path: serialize on the sender's NIC, arrive after the latency.
    // An empty on_injected (eager sends complete locally, before the
    // transfer) schedules nothing.
    const net::LinkParams& p = fabric_.params(cls);
    const SimTime arrival = inject(p, src, bytes);
    if (on_injected) engine_.at(arrival - p.latency, std::move(on_injected));
    engine_.at(arrival, std::move(on_arrival));
    return;
  }

  // Memory path: source-side buffer copy, then destination-side copy-out,
  // each drawing on the owning socket's memory bandwidth (they contend with
  // computation — the effect the Eq. 1 model ignores). The arrival
  // continuation is moved stage to stage, not shared.
  memory::BandwidthDomain* dst_domain = domain_of(dst);
  const Duration latency = fabric_.params(cls).latency;
  src_domain->submit(
      bytes, [this, bytes, dst_domain, latency,
              injected = std::move(on_injected),
              arrival = std::move(on_arrival)]() mutable {
        if (injected) injected();
        engine_.after(latency, [bytes, dst_domain,
                                arrival = std::move(arrival)]() mutable {
          if (dst_domain != nullptr) {
            dst_domain->submit(bytes, std::move(arrival));
          } else {
            arrival();
          }
        });
      });
}

const net::LinkParams& Transport::link(int a, int b) const {
  return fabric_.params(topo_.classify(a, b));
}

WireProtocol Transport::protocol_for(int src, int dst,
                                     std::int64_t bytes) const {
  if (bytes > eager_limit_) return WireProtocol::rendezvous;
  if (track_backlog_) {
    // Public entry point: the flat table needs the bounds check the old
    // map lookup never did (post_send re-checks, but callers like
    // Cluster::message_time reach here directly).
    check_ranks(src, dst);
    if (eager_backlog(src, dst) + bytes > options_.eager_buffer_capacity)
      return WireProtocol::rendezvous;
  }
  return WireProtocol::eager;
}

Duration Transport::eager_transfer_time(int src, int dst,
                                        std::int64_t bytes) const {
  const auto& p = link(src, dst);
  return p.overhead + p.gap + p.transfer_time(bytes) + p.overhead;
}

Duration Transport::rendezvous_transfer_time(int src, int dst,
                                             std::int64_t bytes) const {
  const auto& p = link(src, dst);
  // RTS (gap + latency) + CTS (gap + latency) + data, plus endpoint
  // overheads on the payload.
  return p.overhead + (p.gap + p.control_time()) * 2 + p.gap +
         p.transfer_time(bytes) + p.overhead;
}

SimTime Transport::inject(const net::LinkParams& p, int src,
                          std::int64_t payload_bytes) {
  RankState& s = state(src);
  const SimTime start = std::max(engine_.now(), s.nic_free);
  Duration busy = p.gap;
  if (payload_bytes > 0) {
    // The NIC is busy only for the injection itself, not the wire latency.
    busy += p.payload_time(payload_bytes);
  }
  s.nic_free = start + busy;
  return s.nic_free + p.latency;
}

void Transport::deliver(int rank, RequestId request) {
  IW_ASSERT(on_complete_ != nullptr, "completion handler not set");
  on_complete_(rank, request);
}

void Transport::complete(int rank, RequestId request, Duration delay) {
  // Direct-wired mode: the finish time is known now, so tell the process
  // the request settles at now + delay — no completion event at all. The
  // CompletionFn fallback (tests, harnesses without Process objects) keeps
  // the event-delivered semantics.
  if (procs_ != nullptr) {
    procs_[rank]->on_request_settles_at(request, engine_.now() + delay);
    return;
  }
  engine_.after(delay,
                [this, rank, request] { deliver(rank, request); });
}

std::optional<Duration> Transport::post_send(int src, int dst, int tag,
                                             std::int64_t bytes,
                                             RequestId request) {
  IW_REQUIRE(src != dst, "self-sends are not modeled");
  check_ranks(src, dst);
  const net::LinkClass cls = topo_.classify(src, dst);
  if (protocol_for(src, dst, bytes) == WireProtocol::eager)
    return send_eager(cls, src, dst, tag, bytes);
  if (bytes <= eager_limit_) ++stats_.eager_fallbacks;
  send_rendezvous(cls, src, dst, tag, bytes, request);
  return std::nullopt;
}

Duration Transport::send_eager(net::LinkClass cls, int src, int dst, int tag,
                               std::int64_t bytes) {
  ++stats_.eager_sends;
  if (track_backlog_) eager_backlog_[backlog_index(src, dst)] += bytes;

  const Duration overhead = fabric_.params(cls).overhead;
  const Envelope envelope{src, dst, tag, bytes};
  // The arrival closure carries the link overhead, so a matched arrival
  // never re-classifies the link.
  transfer(cls, src, dst, bytes, nullptr, [this, envelope, overhead] {
    on_eager_arrival(envelope, overhead);
  });
  // Local completion: buffering costs only the per-message overhead. The
  // caller folds this into its own wait accounting — no completion event.
  return overhead;
}

void Transport::on_eager_arrival(const Envelope& envelope, Duration overhead) {
  RankState& s = state(envelope.dst);
  auto& q = s.posted_recvs;
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (!envelope.matches(q[i].src, q[i].tag)) continue;
    complete(envelope.dst, q[i].request, overhead);
    if (track_backlog_)
      eager_backlog_[backlog_index(envelope.src, envelope.dst)] -=
          envelope.bytes;
    q.erase(i);
    return;
  }
  ++stats_.unexpected_eager;
  s.unexpected_eager.push_back(envelope);
}

void Transport::send_rendezvous(net::LinkClass cls, int src, int dst, int tag,
                                std::int64_t bytes, RequestId request) {
  ++stats_.rendezvous_sends;
  const std::uint32_t slot = acquire_rdv();
  rdv_slab_[slot] = RdvSend{Envelope{src, dst, tag, bytes}, request, -1};
  ++state(src).outstanding_handshakes;

  const SimTime rts_arrival = inject(fabric_.params(cls), src, 0);
  engine_.at(rts_arrival, [this, slot] { on_rts_arrival(slot); });
}

void Transport::on_rts_arrival(std::uint32_t slot) {
  assert_rdv_live(slot, "on_rts_arrival");
  const Envelope envelope = rdv_slab_[slot].envelope;
  RankState& s = state(envelope.dst);
  auto& q = s.posted_recvs;
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (!envelope.matches(q[i].src, q[i].tag)) continue;
    const RequestId recv_request = q[i].request;
    q.erase(i);
    issue_cts(slot, recv_request);
    return;
  }
  ++stats_.unexpected_rts;
  s.unexpected_rts.push_back(RtsRecord{slot, envelope});
}

void Transport::issue_cts(std::uint32_t slot, RequestId recv_request) {
  assert_rdv_live(slot, "issue_cts");
  RdvSend& send = rdv_slab_[slot];
  send.recv_request = recv_request;
  // The CTS travels dst -> src; the link class is symmetric.
  const SimTime cts_arrival =
      inject(link(send.envelope.dst, send.envelope.src), send.envelope.dst, 0);
  engine_.at(cts_arrival, [this, slot] { on_cts_arrival(slot); });
}

void Transport::on_cts_arrival(std::uint32_t slot) {
  assert_rdv_live(slot, "on_cts_arrival");
  RankState& s = state(rdv_slab_[slot].envelope.src);
  IW_ASSERT(s.outstanding_handshakes > 0,
            "CTS without an outstanding handshake");
  --s.outstanding_handshakes;

  const bool must_defer =
      options_.pipelining == RendezvousPipelining::deferred_push &&
      s.outstanding_handshakes > 0;
  if (must_defer) {
    ++stats_.deferred_pushes;
    push_counted(s.deferred, slot);
    return;
  }

  // This CTS may have cleared the last outstanding handshake: flush every
  // held push first (their CTS arrived earlier), then this one. The NIC
  // serializes the injections in that order. The flush stages through a
  // pooled scratch buffer, so draining allocates nothing once warm.
  if (s.outstanding_handshakes == 0 && !s.deferred.empty()) {
    deferred_scratch_.swap(s.deferred);  // s.deferred is now empty, pooled
    for (const std::uint32_t held : deferred_scratch_) push_data(held);
    deferred_scratch_.clear();
  }
  push_data(slot);
}

void Transport::push_data(std::uint32_t slot) {
  assert_rdv_live(slot, "push_data");
  const RdvSend send = rdv_slab_[slot];
  release_rdv(slot);
  IW_ASSERT(send.recv_request >= 0, "data push before the CTS matched");

  const int src = send.envelope.src;
  const int dst = send.envelope.dst;
  const RequestId send_request = send.send_request;
  const RequestId recv_request = send.recv_request;
  const net::LinkClass cls = topo_.classify(src, dst);
  const Duration overhead = fabric_.params(cls).overhead;
  // The sender is done once the payload is fully handed off; the receiver
  // when it has arrived (plus the per-message overhead).
  transfer(cls, src, dst, send.envelope.bytes,
           [this, src, send_request] {
             complete(src, send_request, Duration::zero());
           },
           [this, dst, recv_request, overhead] {
             complete(dst, recv_request, overhead);
           });
}

void Transport::post_recv(int dst, int src, int tag, std::int64_t bytes,
                          RequestId request) {
  IW_REQUIRE(src != dst, "self-receives are not modeled");
  check_ranks(src, dst);
  RankState& s = state(dst);

  // 1) Already-arrived eager payload?
  auto& ue = s.unexpected_eager;
  for (std::size_t i = 0; i < ue.size(); ++i) {
    if (!ue[i].matches(src, tag)) continue;
    const auto& p = link(src, dst);
    complete(dst, request, p.overhead);
    if (track_backlog_)
      eager_backlog_[backlog_index(src, dst)] -= ue[i].bytes;
    ue.erase(i);
    return;
  }

  // 2) A waiting rendezvous handshake?
  auto& ur = s.unexpected_rts;
  for (std::size_t i = 0; i < ur.size(); ++i) {
    if (!ur[i].envelope.matches(src, tag)) continue;
    const std::uint32_t slot = ur[i].slot;
    ur.erase(i);
    issue_cts(slot, request);
    return;
  }

  // 3) Nothing yet: queue the receive.
  s.posted_recvs.push_back(PostedRecv{src, tag, bytes, request});
}

}  // namespace iw::mpi
