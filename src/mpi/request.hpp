// Nonblocking communication requests (the MPI_Request analogue).
#pragma once

#include <cstdint>

namespace iw::mpi {

/// Handle to a pending nonblocking operation; an index into the owning
/// process's current request window (requests are created by Isend/Irecv
/// ops and all retired together by the following WaitAll).
using RequestId = int;

struct Request {
  enum class Kind : std::uint8_t { send, recv };

  Kind kind = Kind::send;
  int peer = -1;
  int tag = 0;
  std::int64_t bytes = 0;
  bool complete = false;
};

}  // namespace iw::mpi
