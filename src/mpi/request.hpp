// Nonblocking communication requests (the MPI_Request analogue).
#pragma once

#include <cstdint>

#include "support/time.hpp"

namespace iw::mpi {

/// Handle to a pending nonblocking operation; an index into the owning
/// process's current request window (requests are created by Isend/Irecv
/// ops and all retired together by the following WaitAll).
using RequestId = int;

struct Request {
  enum class Kind : std::uint8_t { send, recv };

  Kind kind = Kind::send;
  int peer = -1;
  int tag = 0;
  std::int64_t bytes = 0;
  /// Event-driven completion (receives, rendezvous sends) delivered via
  /// Transport's completion wiring.
  bool complete = false;
  /// Timed completion (eager sends): the finish time is known when the
  /// request is posted, so no completion event exists — the request counts
  /// as settled once the clock reaches `due`.
  bool timed = false;
  SimTime due;
};

}  // namespace iw::mpi
