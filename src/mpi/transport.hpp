// The message transport: eager and rendezvous protocol state machines on
// top of the network model.
//
// Timing model per message (Hockney + LogGOPS-style serialization):
//   * the sender's NIC serializes injections: a message occupies the NIC for
//     gap + bytes/bandwidth, control messages for gap only;
//   * arrival at the destination is injection-end + latency;
//   * a completed receive is charged the per-message overhead `o`.
//
// Eager protocol (bytes <= eager limit): the sender buffers the payload and
// its request completes immediately after the local overhead — the sender
// "can get rid of its messages" (paper Sec. IV). Data travels autonomously;
// unexpected arrivals queue at the receiver until a matching Irecv is
// posted. An optional finite per-destination buffer makes over-limit eager
// sends fall back to rendezvous, modeling the footnote in the paper
// ("a limit to the internal buffers ... handled like a transition to a
// rendezvous protocol"); an optional per-endpoint credit window
// (EagerPolicy::credit_window) does the same per *message count*, returning
// credits when the receiver drains the message.
//
// Rendezvous protocol (bytes > eager limit): RTS control message to the
// receiver; when the RTS has arrived *and* a matching receive is posted, the
// payload moves under the configured RendezvousFlavor:
//   * two_sided — the receiver returns a CTS; on CTS arrival the sender
//     pushes the payload; the receiver's CPU completes the message (charged
//     `o`). Pushes are subject to the RendezvousPipelining semantic
//     (message.hpp) — the deferred_push rule is what makes bidirectional
//     rendezvous waves travel at sigma = 2.
//   * rdma_put — the CTS doubles as an RTR carrying the target address and
//     remote key; the sender's NIC puts the payload one-sidedly and chases
//     it with a FIN control message, whose arrival — not the payload's —
//     completes the receiver, with no receive-side CPU overhead.
//   * rdma_get — the RTS carries the source buffer's key; the receiver
//     injects a GET request, the source NIC streams the payload back
//     without CPU involvement (receiver completes at arrival, no `o`), and
//     a FIN from the receiver retires the sender's buffer.
// One-sided puts/gets are executed by the NIC and are never held behind the
// sender's other handshakes (deferred_push applies to two_sided only).
//
// Finite-injection NIC (NicModel::injection_depth > 0): each rank may have
// at most `depth` in-flight injections (posted sends whose NIC
// serialization has not finished). post_send beyond the budget lands in a
// per-rank retry backlog (LCI's bounded-queue-sends shape: push if the
// backlog is non-empty OR the budget is full, preserving FIFO) and is
// dispatched as earlier injections complete. A backlogged eager send does
// NOT complete locally at post time — its local completion (the overhead
// `o`) is charged when the entry actually reaches the NIC, which is what
// couples eager senders to NIC drain under load. Budgeted operations are
// the sender-initiated ones (eager payloads and RTS); protocol responses
// (CTS, GET requests, FINs, handshake-complete payload pushes) ride
// reserved response slots and bypass the budget, so the protocol can always
// make progress. Intra-node sends routed through memory domains never touch
// the NIC and are exempt as well.
//
// Hot-path layout: the steady-state send/receive path performs no hash
// lookup, no heap allocation, and no type-erased dispatch.
//   * In-flight rendezvous records live in a free-list-backed slab; the
//     slot index rides inside the RTS/CTS event closures (the simulated
//     control-message envelope), so every protocol step is one array index.
//   * Per-endpoint matching queues and the NIC retry backlog are RingQueues
//     over pooled storage that is retained across runs (see reconfigure()).
//   * Eager-backlog and credit accounting use flat (src, dst) tables sized
//     from the Topology — and are skipped entirely under the default
//     infinite capacity / unlimited credits, where the fallbacks can never
//     trigger. (Each table is ranks^2 entries; finite-buffer ablations at
//     several thousand ranks pay that footprint knowingly.) Likewise the
//     default unbounded NIC (injection_depth 0) skips all budget machinery.
//   * Request completions and memory-domain lookups route through
//     rank-indexed pointer tables (Process* / BandwidthDomain*) owned by
//     the Cluster instead of std::function callbacks.
// pool_stats() exposes the pools' allocation counters so tests can assert
// the zero-allocation claim.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "memory/bandwidth_domain.hpp"
#include "mpi/message.hpp"
#include "mpi/request.hpp"
#include "mpi/transport_config.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "obs/tracer.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "support/ring_queue.hpp"

namespace iw::mpi {

class Process;

class Transport {
 public:
  /// Counters for tests/ablations.
  struct Stats {
    std::uint64_t eager_sends = 0;
    std::uint64_t rendezvous_sends = 0;
    std::uint64_t eager_fallbacks = 0;   ///< eager-sized but buffer-full
    std::uint64_t credit_stalls = 0;     ///< eager-sized but out of credits
    std::uint64_t nic_backlogged = 0;    ///< posts that hit the retry backlog
    std::uint64_t deferred_pushes = 0;   ///< data pushes held by the rule
    std::uint64_t rdma_puts = 0;         ///< one-sided put payload transfers
    std::uint64_t rdma_gets = 0;         ///< one-sided get payload transfers
    std::uint64_t unexpected_eager = 0;  ///< eager arrivals before the recv
    std::uint64_t unexpected_rts = 0;    ///< RTS arrivals before the recv
  };

  /// Pool counters backing the steady-state zero-allocation claim: once the
  /// pools are warm, `allocations` must stop moving no matter how many more
  /// messages flow.
  struct PoolStats {
    std::uint64_t allocations = 0;    ///< total pool-growth (heap) events
    std::size_t rdv_slab_capacity = 0;
    std::size_t rdv_in_flight = 0;    ///< live rendezvous records
    std::size_t nic_backlog_depth = 0;  ///< entries waiting across all ranks
    std::size_t nic_inflight = 0;       ///< budgeted injections in flight
  };

  using CompletionFn = std::function<void(int rank, RequestId request)>;

  Transport(sim::Engine& engine, const net::Topology& topo,
            const net::FabricProfile& fabric, const TransportConfig& config);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Hot-path completion wiring: `by_rank` points at a rank-indexed Process*
  /// table (owned by the Cluster, alive for the run). Completions call
  /// Process::on_request_complete directly — no type-erased dispatch.
  void set_processes(Process* const* by_rank);

  /// Fallback completion seam for harnesses that drive the transport
  /// without Process objects (tests, benches). Used only when no process
  /// table is set.
  void set_completion_handler(CompletionFn fn);

  /// Enables memory-bus accounting for intra-node payloads: a message
  /// between ranks of the same node is a pair of memory copies (source-side
  /// buffer copy, destination-side copy-out), each charged to the
  /// respective socket's bandwidth domain. This is the mechanism the paper
  /// invokes to explain why the Fig. 1 measurement falls a factor ~2 short
  /// of the Eq. 1 model, which "ignores the communication between
  /// processes within a node". Control messages stay on the NIC path.
  /// `by_rank` maps each rank to its socket's domain (entries may be null);
  /// pass an empty vector to disable. Copied into pooled storage — repeated
  /// wiring across reconfigure() runs allocates nothing once warm.
  void set_memory_domains(const std::vector<memory::BandwidthDomain*>& by_rank);

  /// Re-arms the transport for another run after the owning cluster reshaped
  /// its topology/fabric/config: protocol state and wiring are cleared, but
  /// every pool (rank queues, rendezvous slab, backlog tables) keeps its
  /// storage. Rank-state vectors are resized to the topology's current rank
  /// count. Validates the config. Must be paired with an Engine::reset().
  void reconfigure(const net::FabricProfile& fabric,
                   const TransportConfig& config);

  /// Nonblocking send of `bytes` from `src` to `dst`.
  ///
  /// Eager sends complete locally at a time known at post time (now + the
  /// per-message overhead `o` — the sender "can get rid of its messages"),
  /// so instead of scheduling a completion event the call returns that
  /// local-completion delay and the caller owns it (Process folds it into
  /// its WaitAll accounting; harnesses schedule their own event). Returns
  /// nullopt for rendezvous sends and NIC-backlogged sends, whose
  /// completion is event-driven and arrives through the completion wiring.
  std::optional<Duration> post_send(int src, int dst, int tag,
                                    std::int64_t bytes, RequestId request);

  /// Nonblocking receive at `dst` for a message from `src`.
  void post_recv(int dst, int src, int tag, std::int64_t bytes,
                 RequestId request);

  /// Fast-forward support: posts an eager send on behalf of a rank that is
  /// not being event-simulated (a "ghost" at the rim of the active set).
  /// The ghost has no Process and no Request — the local completion time is
  /// discarded, because the analytic path already knows the ghost's
  /// timeline. Restricted to configurations where an eager send cannot
  /// interact with sender-side protocol state: ideal NIC (no injection
  /// budget), unbounded eager buffers, no credit window, eager-sized
  /// payload. The fast-forward planner guarantees these; the IW_REQUIREs
  /// re-prove them here.
  void post_ghost_send(int src, int dst, int tag, std::int64_t bytes);

  /// Protocol a send of this size would use right now (the static size rule
  /// plus the dynamic finite-buffer and credit-exhaustion fallbacks).
  [[nodiscard]] WireProtocol protocol_for(int src, int dst,
                                          std::int64_t bytes) const;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t eager_limit() const { return eager_limit_; }
  [[nodiscard]] const TransportConfig& config() const { return config_; }
  [[nodiscard]] PoolStats pool_stats() const;

  /// Arms (or with nullptr disarms) the protocol flight recorder. The only
  /// hot-path cost while disarmed is one predicted-not-taken branch per
  /// protocol step. Cleared by reconfigure(); harnesses re-arm per run.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  /// Flow-control shadow levels for the metrics registry: total eager
  /// credits currently charged and total bytes parked in finite eager
  /// buffers, summed over all (src, dst) pairs. Zero whenever the feature
  /// is disabled or the transport is drained.
  [[nodiscard]] std::int64_t credits_outstanding() const {
    std::int64_t total = 0;
    for (const int c : eager_credits_) total += c;
    return total;
  }
  [[nodiscard]] std::int64_t eager_backlog_bytes() const {
    std::int64_t total = 0;
    for (const std::int64_t b : eager_backlog_) total += b;
    return total;
  }

  /// Structural audit of the protocol pools (audit builds only; a no-op
  /// otherwise): rendezvous free-list integrity (on-slab, no double-free),
  /// slot-liveness reconciliation against pool_stats() (live records ==
  /// slab extent - free list), deferred-push lists and backlogged RTS
  /// entries referencing only live slots, per-rank queue canaries, NIC
  /// budget bounds (0 <= nic_inflight <= injection_depth) with shadow-total
  /// reconciliation of in-flight injections, backlog depth, and outstanding
  /// eager credits. reconfigure() runs it on entry — so every sweep-point
  /// recycle re-proves the pools — and again after clearing, when no record
  /// may remain live.
  void audit() const;

  /// End-to-end duration between posting a send and the matching receive
  /// completing, for a message posted into an otherwise idle transport with
  /// the receive pre-posted. This is the `Tcomm` that enters the analytic
  /// speed model (Eq. 2) for eager traffic; rendezvous adds the handshake
  /// and depends on the configured RendezvousFlavor.
  [[nodiscard]] Duration eager_transfer_time(int src, int dst,
                                             std::int64_t bytes) const;
  [[nodiscard]] Duration rendezvous_transfer_time(int src, int dst,
                                                  std::int64_t bytes) const;

 private:
  struct PostedRecv {
    int src;
    int tag;
    std::int64_t bytes;
    RequestId request;
  };

  /// In-flight rendezvous record, pooled in `rdv_slab_` and addressed by
  /// slot index. The slot travels through the RTS/CTS/push event closures.
  struct RdvSend {
    Envelope envelope;
    RequestId send_request = -1;
    RequestId recv_request = -1;  ///< filled in when the CTS is issued
  };

  struct RtsRecord {
    std::uint32_t slot;
    Envelope envelope;
  };

  /// One send waiting in the NIC retry backlog. Eager entries carry their
  /// envelope and the local request to complete at drain time; rendezvous
  /// entries are just the slab slot of the already-acquired record (the RTS
  /// is re-posted from the slab when the entry drains).
  struct BacklogEntry {
    enum class Kind : std::uint8_t { eager, rts };
    Kind kind = Kind::eager;
    Envelope envelope;
    RequestId request = -1;     ///< eager only: local completion at drain
    std::uint32_t slot = 0;     ///< rts only
  };

  struct RankState {
    RingQueue<PostedRecv> posted_recvs;
    RingQueue<Envelope> unexpected_eager;
    RingQueue<RtsRecord> unexpected_rts;
    RingQueue<BacklogEntry> nic_backlog;   ///< finite-injection retry queue
    SimTime nic_free = SimTime::zero();
    int nic_inflight = 0;                  ///< budgeted injections in flight
    int outstanding_handshakes = 0;        ///< RTS sent, CTS not yet received
    std::vector<std::uint32_t> deferred;   ///< handshake-complete, push held
  };

  [[nodiscard]] const net::LinkParams& link(int a, int b) const;
  RankState& state(int rank) {
    return ranks_[static_cast<std::size_t>(rank)];
  }

  /// Injects a message into `src`'s NIC (link parameters already resolved
  /// by the caller — each protocol op classifies its link exactly once);
  /// returns the arrival time at the destination.
  SimTime inject(const net::LinkParams& p, int src, std::int64_t payload_bytes);

  /// inject() plus finite-NIC budget accounting: counts the injection
  /// against the rank's in-flight budget and schedules the drain event (at
  /// injection end) that releases it and dispatches backlogged sends.
  /// Callers on budget-exempt paths use inject() directly.
  SimTime inject_counted(const net::LinkParams& p, int src,
                         std::int64_t payload_bytes);

  /// True when a message from `src` over `cls` uses the NIC (as opposed to
  /// the intra-node memory-copy path) — the condition under which the
  /// finite-injection budget applies.
  [[nodiscard]] bool nic_path(net::LinkClass cls, int src) const {
    const bool same_node = cls == net::LinkClass::intra_socket ||
                           cls == net::LinkClass::inter_socket;
    return !(same_node && domain_of(src) != nullptr);
  }

  /// LCI's bounded-queue rule: a post must queue if anything is already
  /// queued (FIFO) or the budget is exhausted.
  [[nodiscard]] bool nic_saturated(const RankState& s) const {
    return !s.nic_backlog.empty() || s.nic_inflight >= nic_depth_;
  }

  void backlog_push(int src, BacklogEntry entry);
  void on_nic_drain(int src);

  /// Moves `bytes` of payload from src to dst over the already-classified
  /// link `cls`. `on_injected` (may be empty) fires when the sender has
  /// fully handed the data off (its local completion point for rendezvous
  /// sends); `on_arrival` (may be empty for one-sided puts, where the FIN
  /// completes the receiver instead) fires when the payload is available at
  /// the destination. Uses the NIC path across nodes and the memory-copy
  /// path within a node when domains are configured; `counted` charges a
  /// NIC-path injection against the finite budget. The continuations are
  /// one-shot move-only closures: they travel through the protocol layers
  /// by move, never by copy.
  void transfer(net::LinkClass cls, int src, int dst, std::int64_t bytes,
                sim::EventFn on_injected, sim::EventFn on_arrival,
                bool counted = false);

  void check_ranks(int src, int dst) const {
    IW_REQUIRE(src >= 0 && dst >= 0 &&
                   static_cast<std::size_t>(src) < nranks_ &&
                   static_cast<std::size_t>(dst) < nranks_,
               "rank out of range");
  }

  /// Returns the sender's local-completion delay (the link overhead); the
  /// caller owns the request's completion, so no id is taken. Wire-level
  /// only: protocol accounting (stats, buffer bytes, credits) is charged by
  /// post_send at post time, so backlog drains do not double-count.
  Duration send_eager(net::LinkClass cls, int src, int dst, int tag,
                      std::int64_t bytes);
  /// Acquires a rendezvous record and posts (or backlogs) its RTS.
  void send_rendezvous(net::LinkClass cls, int src, int dst, int tag,
                       std::int64_t bytes, RequestId request);
  void send_rts(net::LinkClass cls, std::uint32_t slot);
  void on_eager_arrival(const Envelope& envelope, Duration overhead);
  void on_rts_arrival(std::uint32_t slot);
  void issue_cts(std::uint32_t slot, RequestId recv_request);
  void on_cts_arrival(std::uint32_t slot);
  void push_data(std::uint32_t slot);
  void put_data(std::uint32_t slot);
  void issue_get(std::uint32_t slot, RequestId recv_request);
  void on_get_arrival(std::uint32_t slot);
  void complete(int rank, RequestId request, Duration delay);
  void deliver(int rank, RequestId request);

  /// Returns one eager credit for a drained (src -> dst) message.
  void return_credit(int src, int dst) {
    IW_ASSERT(eager_credits_[backlog_index(src, dst)] > 0,
              "eager credit returned that was never taken");
    --eager_credits_[backlog_index(src, dst)];
    IW_AUDIT(--credits_outstanding_);
    trace(obs::TraceEvent::kCreditReturn, src, dst);
  }

  /// Flight-recorder sink: one predicted branch when disarmed, one ring
  /// store when armed. Every protocol step funnels through here; the
  /// armed path is marked unlikely so the disarmed hot path stays dense
  /// (records land in a cold block, record() itself is out of line).
  void trace(obs::TraceEvent ev, int rank, int peer = -1,
             std::int64_t bytes = 0,
             std::uint32_t slot = obs::Tracer::kNoSlot) {
    if (tracer_ != nullptr) [[unlikely]]
      tracer_->record(engine_.now(), ev, rank, peer, bytes, slot);
  }

  [[nodiscard]] memory::BandwidthDomain* domain_of(int rank) const {
    return use_domains_ ? domains_by_rank_[static_cast<std::size_t>(rank)]
                        : nullptr;
  }

  [[nodiscard]] std::size_t backlog_index(int src, int dst) const {
    return static_cast<std::size_t>(src) * nranks_ +
           static_cast<std::size_t>(dst);
  }
  [[nodiscard]] std::int64_t eager_backlog(int src, int dst) const {
    return track_backlog_ ? eager_backlog_[backlog_index(src, dst)] : 0;
  }

  std::uint32_t acquire_rdv();
  void release_rdv(std::uint32_t slot);

#if IW_AUDIT_ENABLED
  /// Audit-only shadow of the rendezvous slab: 1 = slot holds an in-flight
  /// record. Lets every protocol step assert its slot is live (a stale slot
  /// index riding in an event closure is this module's nastiest failure
  /// mode) and lets audit() reconcile liveness against the free list.
  std::vector<std::uint8_t> rdv_live_;
  /// Audit-only shadow totals, maintained incrementally at every
  /// transaction site; audit() reconciles them against the per-rank / per-
  /// pair structures, catching a missed increment or decrement.
  std::int64_t nic_inflight_total_ = 0;
  std::int64_t nic_backlog_total_ = 0;
  std::int64_t credits_outstanding_ = 0;
  void assert_rdv_live(std::uint32_t slot, const char* step) const {
    IW_ASSERT(slot < rdv_slab_.size(),
              std::string(step) + ": rendezvous slot off the slab");
    IW_ASSERT(rdv_live_[slot] != 0,
              std::string(step) + ": rendezvous slot is not live "
                                  "(stale index in an event closure?)");
  }
#else
  void assert_rdv_live(std::uint32_t, const char*) const {}
#endif

  /// push_back that counts a capacity growth as a pool allocation.
  template <typename T>
  void push_counted(std::vector<T>& v, T value) {
    if (v.size() == v.capacity()) ++pool_allocations_;
    v.push_back(std::move(value));
  }

  sim::Engine& engine_;
  const net::Topology& topo_;
  net::FabricProfile fabric_;
  TransportConfig config_;
  std::int64_t eager_limit_ = 0;
  std::size_t nranks_ = 0;

  // Config-derived fast flags: each optional subsystem is gated by one bool
  // so the ideal configuration pays nothing for the features it disables.
  bool nic_limited_ = false;   ///< injection_depth > 0
  int nic_depth_ = 0;
  int nic_backlog_cap_ = 0;    ///< 0 = unbounded
  bool track_credits_ = false; ///< credit_window > 0
  int credit_window_ = 0;
  RendezvousFlavor flavor_ = RendezvousFlavor::two_sided;

  // Rank-indexed wiring (devirtualized callbacks).
  Process* const* procs_ = nullptr;
  CompletionFn on_complete_;
  std::vector<memory::BandwidthDomain*> domains_by_rank_;
  bool use_domains_ = false;

  // Pools. All storage survives reconfigure(); only logical state resets.
  std::vector<RankState> ranks_;
  std::vector<RdvSend> rdv_slab_;
  std::vector<std::uint32_t> rdv_free_;
  std::vector<std::int64_t> eager_backlog_;  ///< ranks^2, finite capacity only
  bool track_backlog_ = false;
  std::vector<int> eager_credits_;  ///< ranks^2, in-flight msgs; credits only
  std::vector<std::uint32_t> deferred_scratch_;  ///< flush staging buffer
  std::uint64_t pool_allocations_ = 0;

  obs::Tracer* tracer_ = nullptr;

  Stats stats_;
};

}  // namespace iw::mpi
