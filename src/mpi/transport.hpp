// The message transport: eager and rendezvous protocol state machines on
// top of the network model.
//
// Timing model per message (Hockney + LogGOPS-style serialization):
//   * the sender's NIC serializes injections: a message occupies the NIC for
//     gap + bytes/bandwidth, control messages for gap only;
//   * arrival at the destination is injection-end + latency;
//   * a completed receive is charged the per-message overhead `o`.
//
// Eager protocol (bytes <= eager limit): the sender buffers the payload and
// its request completes immediately after the local overhead — the sender
// "can get rid of its messages" (paper Sec. IV). Data travels autonomously;
// unexpected arrivals queue at the receiver until a matching Irecv is
// posted. An optional finite per-destination buffer makes over-limit eager
// sends fall back to rendezvous, modeling the footnote in the paper
// ("a limit to the internal buffers ... handled like a transition to a
// rendezvous protocol").
//
// Rendezvous protocol (bytes > eager limit): RTS control message to the
// receiver; when the RTS has arrived *and* a matching receive is posted, the
// receiver returns a CTS; on CTS arrival the sender pushes the payload. The
// sender's request completes when the payload has been fully injected, the
// receiver's when it has fully arrived. Data pushes are subject to the
// RendezvousPipelining semantic (see message.hpp) — the deferred_push rule
// is what makes bidirectional rendezvous waves travel at sigma = 2.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "memory/bandwidth_domain.hpp"
#include "mpi/message.hpp"
#include "mpi/request.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace iw::mpi {

class Transport {
 public:
  struct Options {
    RendezvousPipelining pipelining = RendezvousPipelining::deferred_push;
    /// Max eager payload bytes in flight (sent but not yet matched) per
    /// (source, destination) pair; further eager sends fall back to
    /// rendezvous until the backlog drains.
    std::int64_t eager_buffer_capacity =
        std::numeric_limits<std::int64_t>::max();
    /// Overrides the fabric's eager/rendezvous threshold if non-negative.
    std::int64_t eager_limit_override = -1;
  };

  /// Counters for tests/ablations.
  struct Stats {
    std::uint64_t eager_sends = 0;
    std::uint64_t rendezvous_sends = 0;
    std::uint64_t eager_fallbacks = 0;   ///< eager-sized but buffer-full
    std::uint64_t deferred_pushes = 0;   ///< data pushes held by the rule
    std::uint64_t unexpected_eager = 0;  ///< eager arrivals before the recv
    std::uint64_t unexpected_rts = 0;    ///< RTS arrivals before the recv
  };

  using CompletionFn = std::function<void(int rank, RequestId request)>;

  Transport(sim::Engine& engine, const net::Topology& topo,
            const net::FabricProfile& fabric, Options options);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Must be set before any post; routes request completions to processes.
  void set_completion_handler(CompletionFn fn);

  /// Maps a rank to its socket's bandwidth domain (may return null).
  using DomainLookup = std::function<memory::BandwidthDomain*(int rank)>;

  /// Enables memory-bus accounting for intra-node payloads: a message
  /// between ranks of the same node is a pair of memory copies (source-side
  /// buffer copy, destination-side copy-out), each charged to the
  /// respective socket's bandwidth domain. This is the mechanism the paper
  /// invokes to explain why the Fig. 1 measurement falls a factor ~2 short
  /// of the Eq. 1 model, which "ignores the communication between
  /// processes within a node". Control messages stay on the NIC path.
  void set_memory_domains(DomainLookup lookup);

  /// Nonblocking send of `bytes` from `src` to `dst`.
  void post_send(int src, int dst, int tag, std::int64_t bytes,
                 RequestId request);

  /// Nonblocking receive at `dst` for a message from `src`.
  void post_recv(int dst, int src, int tag, std::int64_t bytes,
                 RequestId request);

  /// Protocol a send of this size would use right now (includes the
  /// finite-buffer fallback decision).
  [[nodiscard]] WireProtocol protocol_for(int src, int dst,
                                          std::int64_t bytes) const;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t eager_limit() const { return eager_limit_; }

  /// End-to-end duration between posting a send and the matching receive
  /// completing, for a message posted into an otherwise idle transport with
  /// the receive pre-posted. This is the `Tcomm` that enters the analytic
  /// speed model (Eq. 2) for eager traffic; rendezvous adds the handshake.
  [[nodiscard]] Duration eager_transfer_time(int src, int dst,
                                             std::int64_t bytes) const;
  [[nodiscard]] Duration rendezvous_transfer_time(int src, int dst,
                                                  std::int64_t bytes) const;

 private:
  struct PostedRecv {
    int src;
    int tag;
    std::int64_t bytes;
    RequestId request;
  };

  struct RtsRecord {
    std::uint64_t send_uid;
    Envelope envelope;
  };

  struct RdvSend {
    Envelope envelope;
    RequestId send_request = -1;
    RequestId recv_request = -1;  ///< filled in when the CTS is issued
  };

  struct RankState {
    std::deque<PostedRecv> posted_recvs;
    std::deque<Envelope> unexpected_eager;
    std::deque<RtsRecord> unexpected_rts;
    SimTime nic_free = SimTime::zero();
    int outstanding_handshakes = 0;        ///< RTS sent, CTS not yet received
    std::vector<std::uint64_t> deferred;   ///< handshake-complete, push held
  };

  [[nodiscard]] const net::LinkParams& link(int a, int b) const;
  RankState& state(int rank);

  /// Injects a message into `src`'s NIC; returns the arrival time at dst.
  SimTime inject(int src, int dst, std::int64_t payload_bytes);

  /// Moves `bytes` of payload from src to dst. `on_injected` fires when the
  /// sender has fully handed the data off (its local completion point for
  /// rendezvous sends); `on_arrival` fires when the payload is available at
  /// the destination. Uses the NIC path across nodes and the memory-copy
  /// path within a node when domains are configured. The continuations are
  /// one-shot move-only closures: they travel through the protocol layers
  /// by move, never by copy.
  void transfer(int src, int dst, std::int64_t bytes, sim::EventFn on_injected,
                sim::EventFn on_arrival);

  void send_eager(int src, int dst, int tag, std::int64_t bytes,
                  RequestId request);
  void send_rendezvous(int src, int dst, int tag, std::int64_t bytes,
                       RequestId request);
  void on_eager_arrival(const Envelope& envelope);
  void on_rts_arrival(std::uint64_t send_uid);
  void issue_cts(std::uint64_t send_uid, RequestId recv_request);
  void on_cts_arrival(std::uint64_t send_uid);
  void push_data(std::uint64_t send_uid);
  void complete(int rank, RequestId request, Duration delay);

  [[nodiscard]] std::int64_t eager_backlog(int src, int dst) const;

  sim::Engine& engine_;
  const net::Topology& topo_;
  net::FabricProfile fabric_;
  Options options_;
  std::int64_t eager_limit_;
  CompletionFn on_complete_;
  DomainLookup domain_lookup_;
  std::vector<RankState> ranks_;
  std::unordered_map<std::uint64_t, RdvSend> rdv_sends_;
  std::unordered_map<std::int64_t, std::int64_t> eager_backlog_;
  std::uint64_t next_uid_ = 0;
  Stats stats_;
};

}  // namespace iw::mpi
