// Verdict baselining: regression-gating one verdict JSON against another.
//
// verify_runner --json writes a machine-readable verdict per run; CI
// archives it. The baseline mode loads two such documents — the baseline
// (e.g. from the last green revision) and a candidate (a fresh run) — and
// classifies every scenario's transition: regressed (pass -> fail), fixed,
// degraded (still failing, but worse), vanished (coverage lost), appeared,
// or unchanged. A report with any regression-class delta gates the build.
//
// Parsing is self-contained: a minimal JSON reader for the verdict-document
// shape (objects, arrays, strings with json_str() escapes, numbers, bools),
// so the gate needs no external parser and works on any archived verdict.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace iw::verify {

/// Per-scenario summary extracted from a verdict document. Counts are
/// sizes of the verdict's offense arrays, not re-derived from records.
struct VerdictSummary {
  std::string name;
  bool pass = false;
  std::string error;  ///< infrastructure failure recorded in the verdict
  std::size_t records_run = 0;
  std::size_t field_diffs = 0;
  std::size_t structural = 0;
  std::size_t oracle_violations = 0;
  std::size_t mutations_missed = 0;  ///< probes the differ failed to catch
};

/// One parsed verdict document (the output of verdict_json()).
struct VerdictDocument {
  int schema = 0;
  bool pass = false;
  std::vector<VerdictSummary> scenarios;
};

/// Parses a verdict JSON document. Throws std::runtime_error on malformed
/// JSON or a document missing the verdict shape ("scenarios" array with
/// named entries).
[[nodiscard]] VerdictDocument parse_verdict_json(const std::string& text);

/// Reads and parses a verdict file. Throws std::runtime_error when the
/// file cannot be read or fails to parse.
[[nodiscard]] VerdictDocument load_verdict(const std::string& path);

/// Classification of one scenario's baseline -> candidate transition.
enum class DeltaKind : std::uint8_t {
  regressed,  ///< passed in the baseline, fails in the candidate
  fixed,      ///< failed in the baseline, passes in the candidate
  degraded,   ///< fails in both, with strictly more offenses now
  vanished,   ///< in the baseline only: verification coverage was lost
  appeared,   ///< in the candidate only (and passing)
  unchanged,
};

[[nodiscard]] constexpr const char* to_string(DeltaKind k) {
  switch (k) {
    case DeltaKind::regressed: return "regressed";
    case DeltaKind::fixed: return "fixed";
    case DeltaKind::degraded: return "degraded";
    case DeltaKind::vanished: return "vanished";
    case DeltaKind::appeared: return "appeared";
    case DeltaKind::unchanged: return "unchanged";
  }
  return "?";
}

struct ScenarioDelta {
  std::string scenario;
  DeltaKind kind = DeltaKind::unchanged;
  std::string detail;
};

struct BaselineReport {
  std::vector<ScenarioDelta> deltas;  ///< baseline order, new names appended

  /// True when any delta gates: regressed, degraded, or vanished. A new
  /// scenario that *fails* is classified regressed, so it gates too.
  [[nodiscard]] bool regression() const;

  /// Human-readable per-scenario transition table.
  [[nodiscard]] std::string render() const;
};

/// Diffs two parsed verdicts scenario-by-scenario (matched by name).
[[nodiscard]] BaselineReport diff_verdicts(const VerdictDocument& baseline,
                                           const VerdictDocument& candidate);

}  // namespace iw::verify
