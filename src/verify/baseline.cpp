#include "verify/baseline.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "support/json.hpp"
#include "support/table.hpp"

namespace iw::verify {
namespace {

// The JSON reader now lives in support/json.hpp (shared with the
// campaign-service protocol); this file keeps only the verdict-shape
// extraction.
using JsonValue = json::Value;

// ---- verdict-shape extraction ---------------------------------------------

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         JsonValue::Kind kind, const char* what) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != kind)
    throw std::runtime_error(std::string("verdict JSON: ") + what +
                             " needs a '" + key + "' field");
  return *v;
}

std::size_t array_size(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::array ? v->items.size()
                                                           : 0;
}

VerdictSummary summarize_scenario(const JsonValue& s) {
  VerdictSummary out;
  out.name = require(s, "name", JsonValue::Kind::string, "scenario").text;
  out.pass = require(s, "pass", JsonValue::Kind::boolean, "scenario").boolean;
  if (const JsonValue* err = s.find("error");
      err != nullptr && err->kind == JsonValue::Kind::string)
    out.error = err->text;
  if (const JsonValue* run = s.find("records_run");
      run != nullptr && run->kind == JsonValue::Kind::number)
    out.records_run = static_cast<std::size_t>(run->number);
  out.field_diffs = array_size(s, "field_diffs");
  out.structural = array_size(s, "structural");
  if (const JsonValue* oracle = s.find("oracle");
      oracle != nullptr && oracle->kind == JsonValue::Kind::object)
    out.oracle_violations = array_size(*oracle, "violations");
  if (const JsonValue* muts = s.find("mutations");
      muts != nullptr && muts->kind == JsonValue::Kind::array)
    for (const JsonValue& m : muts->items)
      if (const JsonValue* caught = m.find("caught");
          caught != nullptr && !(caught->kind == JsonValue::Kind::boolean &&
                                 caught->boolean))
        ++out.mutations_missed;
  return out;
}

/// Total offense count of a failing scenario, for the degraded comparison.
std::size_t offenses(const VerdictSummary& s) {
  return s.field_diffs + s.structural + s.oracle_violations +
         s.mutations_missed + (s.error.empty() ? 0 : 1);
}

std::string summary_detail(const VerdictSummary& s) {
  if (!s.error.empty()) return "error: " + s.error;
  std::ostringstream os;
  os << s.field_diffs << " field diffs, " << s.structural << " structural, "
     << s.oracle_violations << " oracle violations, " << s.mutations_missed
     << " missed probes";
  return os.str();
}

}  // namespace

VerdictDocument parse_verdict_json(const std::string& text) {
  const JsonValue root = json::parse(text, "verdict JSON");
  if (root.kind != JsonValue::Kind::object)
    throw std::runtime_error("verdict JSON: document is not an object");
  VerdictDocument doc;
  if (const JsonValue* schema = root.find("schema");
      schema != nullptr && schema->kind == JsonValue::Kind::number)
    doc.schema = static_cast<int>(schema->number);
  doc.pass = require(root, "pass", JsonValue::Kind::boolean, "document").boolean;
  const JsonValue& scenarios =
      require(root, "scenarios", JsonValue::Kind::array, "document");
  for (const JsonValue& s : scenarios.items) {
    if (s.kind != JsonValue::Kind::object)
      throw std::runtime_error("verdict JSON: scenario entry is not an object");
    doc.scenarios.push_back(summarize_scenario(s));
  }
  return doc;
}

VerdictDocument load_verdict(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read verdict file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_verdict_json(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

bool BaselineReport::regression() const {
  return std::any_of(deltas.begin(), deltas.end(), [](const ScenarioDelta& d) {
    return d.kind == DeltaKind::regressed || d.kind == DeltaKind::degraded ||
           d.kind == DeltaKind::vanished;
  });
}

std::string BaselineReport::render() const {
  TextTable table;
  table.columns({"scenario", "transition", "detail"});
  for (const ScenarioDelta& d : deltas)
    table.add_row({d.scenario, to_string(d.kind), d.detail});
  if (table.rows() == 0) table.add_row({"(no scenarios)"});
  return table.render();
}

BaselineReport diff_verdicts(const VerdictDocument& baseline,
                             const VerdictDocument& candidate) {
  BaselineReport report;
  const auto find_in = [](const VerdictDocument& doc, const std::string& name)
      -> const VerdictSummary* {
    for (const VerdictSummary& s : doc.scenarios)
      if (s.name == name) return &s;
    return nullptr;
  };

  for (const VerdictSummary& base : baseline.scenarios) {
    ScenarioDelta delta;
    delta.scenario = base.name;
    const VerdictSummary* cand = find_in(candidate, base.name);
    if (cand == nullptr) {
      delta.kind = DeltaKind::vanished;
      delta.detail = "scenario missing from the candidate verdict";
    } else if (base.pass && !cand->pass) {
      delta.kind = DeltaKind::regressed;
      delta.detail = summary_detail(*cand);
    } else if (!base.pass && cand->pass) {
      delta.kind = DeltaKind::fixed;
      delta.detail = "was: " + summary_detail(base);
    } else if (!base.pass && !cand->pass) {
      const bool worse = offenses(*cand) > offenses(base);
      delta.kind = worse ? DeltaKind::degraded : DeltaKind::unchanged;
      delta.detail = "still failing: " + summary_detail(*cand);
    } else {
      delta.kind = DeltaKind::unchanged;
      delta.detail = "pass (" + std::to_string(cand->records_run) + " points)";
    }
    report.deltas.push_back(std::move(delta));
  }

  for (const VerdictSummary& cand : candidate.scenarios) {
    if (find_in(baseline, cand.name) != nullptr) continue;
    ScenarioDelta delta;
    delta.scenario = cand.name;
    // New coverage is welcome, but a brand-new failing scenario must gate
    // exactly like a pass -> fail transition would.
    delta.kind = cand.pass ? DeltaKind::appeared : DeltaKind::regressed;
    delta.detail = cand.pass ? "new scenario, passing"
                             : "new scenario FAILS: " + summary_detail(cand);
    report.deltas.push_back(std::move(delta));
  }
  return report;
}

}  // namespace iw::verify
