#include "verify/baseline.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "support/table.hpp"

namespace iw::verify {
namespace {

// ---- minimal JSON reader --------------------------------------------------
// Covers exactly what verdict_json() emits: objects, arrays, strings with
// json_str() escapes, numbers (including quoted "nan"/"inf", which land
// here as plain strings), booleans and null. Unknown fields are parsed and
// ignored, so older/newer verdict schemas still summarize.

struct JsonValue {
  enum class Kind : std::uint8_t { null, boolean, number, string, array, object };
  Kind kind = Kind::null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [name, value] : members)
      if (name == key) return &value;
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : p_(text.data()), end_(text.data() + text.size()) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (p_ != end_) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("verdict JSON: " + what + " at byte " +
                             std::to_string(offset_));
  }

  [[nodiscard]] bool eof() const { return p_ == end_; }

  char peek() const {
    if (eof()) fail("unexpected end of input");
    return *p_;
  }

  char next() {
    const char c = peek();
    ++p_;
    ++offset_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (!eof() && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
      next();
  }

  bool consume_word(const char* word) {
    const char* q = p_;
    for (const char* w = word; *w; ++w, ++q)
      if (q == end_ || *q != *w) return false;
    while (p_ != q) next();
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::string;
      v.text = string();
      return v;
    }
    if (consume_word("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::boolean;
      v.boolean = true;
      return v;
    }
    if (consume_word("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::boolean;
      return v;
    }
    if (consume_word("null")) return {};
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      next();
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      const char c = next();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      next();
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      const char c = next();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code *= 16;
            if (h >= '0' && h <= '9') code += h - '0';
            else if (h >= 'a' && h <= 'f') code += h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code += h - 'A' + 10;
            else fail("bad \\u escape");
          }
          // json_str only emits \u escapes for control bytes; anything
          // beyond Latin-1 would need surrogate handling we don't accept.
          if (code > 0xFF) fail("non-Latin-1 \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown string escape");
      }
    }
  }

  JsonValue number() {
    std::string digits;
    if (peek() == '-') digits += next();
    while (!eof() && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
                      *p_ == 'E' || *p_ == '+' || *p_ == '-'))
      digits += next();
    if (digits.empty() || digits == "-") fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::number;
    std::size_t consumed = 0;
    try {
      v.number = std::stod(digits, &consumed);
    } catch (const std::exception&) {
      fail("malformed number '" + digits + "'");
    }
    if (consumed != digits.size()) fail("malformed number '" + digits + "'");
    return v;
  }

  const char* p_;
  const char* end_;
  std::size_t offset_ = 0;
};

// ---- verdict-shape extraction ---------------------------------------------

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         JsonValue::Kind kind, const char* what) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != kind)
    throw std::runtime_error(std::string("verdict JSON: ") + what +
                             " needs a '" + key + "' field");
  return *v;
}

std::size_t array_size(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::array ? v->items.size()
                                                           : 0;
}

VerdictSummary summarize_scenario(const JsonValue& s) {
  VerdictSummary out;
  out.name = require(s, "name", JsonValue::Kind::string, "scenario").text;
  out.pass = require(s, "pass", JsonValue::Kind::boolean, "scenario").boolean;
  if (const JsonValue* err = s.find("error");
      err != nullptr && err->kind == JsonValue::Kind::string)
    out.error = err->text;
  if (const JsonValue* run = s.find("records_run");
      run != nullptr && run->kind == JsonValue::Kind::number)
    out.records_run = static_cast<std::size_t>(run->number);
  out.field_diffs = array_size(s, "field_diffs");
  out.structural = array_size(s, "structural");
  if (const JsonValue* oracle = s.find("oracle");
      oracle != nullptr && oracle->kind == JsonValue::Kind::object)
    out.oracle_violations = array_size(*oracle, "violations");
  if (const JsonValue* muts = s.find("mutations");
      muts != nullptr && muts->kind == JsonValue::Kind::array)
    for (const JsonValue& m : muts->items)
      if (const JsonValue* caught = m.find("caught");
          caught != nullptr && !(caught->kind == JsonValue::Kind::boolean &&
                                 caught->boolean))
        ++out.mutations_missed;
  return out;
}

/// Total offense count of a failing scenario, for the degraded comparison.
std::size_t offenses(const VerdictSummary& s) {
  return s.field_diffs + s.structural + s.oracle_violations +
         s.mutations_missed + (s.error.empty() ? 0 : 1);
}

std::string summary_detail(const VerdictSummary& s) {
  if (!s.error.empty()) return "error: " + s.error;
  std::ostringstream os;
  os << s.field_diffs << " field diffs, " << s.structural << " structural, "
     << s.oracle_violations << " oracle violations, " << s.mutations_missed
     << " missed probes";
  return os.str();
}

}  // namespace

VerdictDocument parse_verdict_json(const std::string& text) {
  const JsonValue root = JsonReader(text).parse();
  if (root.kind != JsonValue::Kind::object)
    throw std::runtime_error("verdict JSON: document is not an object");
  VerdictDocument doc;
  if (const JsonValue* schema = root.find("schema");
      schema != nullptr && schema->kind == JsonValue::Kind::number)
    doc.schema = static_cast<int>(schema->number);
  doc.pass = require(root, "pass", JsonValue::Kind::boolean, "document").boolean;
  const JsonValue& scenarios =
      require(root, "scenarios", JsonValue::Kind::array, "document");
  for (const JsonValue& s : scenarios.items) {
    if (s.kind != JsonValue::Kind::object)
      throw std::runtime_error("verdict JSON: scenario entry is not an object");
    doc.scenarios.push_back(summarize_scenario(s));
  }
  return doc;
}

VerdictDocument load_verdict(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read verdict file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_verdict_json(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

bool BaselineReport::regression() const {
  return std::any_of(deltas.begin(), deltas.end(), [](const ScenarioDelta& d) {
    return d.kind == DeltaKind::regressed || d.kind == DeltaKind::degraded ||
           d.kind == DeltaKind::vanished;
  });
}

std::string BaselineReport::render() const {
  TextTable table;
  table.columns({"scenario", "transition", "detail"});
  for (const ScenarioDelta& d : deltas)
    table.add_row({d.scenario, to_string(d.kind), d.detail});
  if (table.rows() == 0) table.add_row({"(no scenarios)"});
  return table.render();
}

BaselineReport diff_verdicts(const VerdictDocument& baseline,
                             const VerdictDocument& candidate) {
  BaselineReport report;
  const auto find_in = [](const VerdictDocument& doc, const std::string& name)
      -> const VerdictSummary* {
    for (const VerdictSummary& s : doc.scenarios)
      if (s.name == name) return &s;
    return nullptr;
  };

  for (const VerdictSummary& base : baseline.scenarios) {
    ScenarioDelta delta;
    delta.scenario = base.name;
    const VerdictSummary* cand = find_in(candidate, base.name);
    if (cand == nullptr) {
      delta.kind = DeltaKind::vanished;
      delta.detail = "scenario missing from the candidate verdict";
    } else if (base.pass && !cand->pass) {
      delta.kind = DeltaKind::regressed;
      delta.detail = summary_detail(*cand);
    } else if (!base.pass && cand->pass) {
      delta.kind = DeltaKind::fixed;
      delta.detail = "was: " + summary_detail(base);
    } else if (!base.pass && !cand->pass) {
      const bool worse = offenses(*cand) > offenses(base);
      delta.kind = worse ? DeltaKind::degraded : DeltaKind::unchanged;
      delta.detail = "still failing: " + summary_detail(*cand);
    } else {
      delta.kind = DeltaKind::unchanged;
      delta.detail = "pass (" + std::to_string(cand->records_run) + " points)";
    }
    report.deltas.push_back(std::move(delta));
  }

  for (const VerdictSummary& cand : candidate.scenarios) {
    if (find_in(baseline, cand.name) != nullptr) continue;
    ScenarioDelta delta;
    delta.scenario = cand.name;
    // New coverage is welcome, but a brand-new failing scenario must gate
    // exactly like a pass -> fail transition would.
    delta.kind = cand.pass ? DeltaKind::appeared : DeltaKind::regressed;
    delta.detail = cand.pass ? "new scenario, passing"
                             : "new scenario FAILS: " + summary_detail(cand);
    report.deltas.push_back(std::move(delta));
  }
  return report;
}

}  // namespace iw::verify
