#include "verify/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string_view>
#include <tuple>
#include <unordered_map>

#include "support/error.hpp"
#include "support/stats.hpp"
#include "sweep/axes.hpp"

namespace iw::verify {
namespace {

void violate(OracleReport& report, std::uint64_t index,
             const std::string& check, const std::string& column, double value,
             double bound, const std::string& detail) {
  report.violations.push_back({index, check, column, value, bound, detail});
}

/// The transport's static protocol rule (mirrors core/experiment.cpp).
const char* expected_protocol(const sweep::SweepPoint& point) {
  const auto& cluster = point.exp.cluster;
  return cluster.transport.protocol_by_size(point.msg_bytes,
                                            cluster.fabric.eager_limit_bytes) ==
                 mpi::WireProtocol::rendezvous
             ? "rendezvous"
             : "eager";
}

/// Serialized value of axis/identity column `column` of `r`.
std::string column_text(const sweep::SweepRecord& r, const char* column) {
  const auto c = sweep::column_index(column);
  IW_CHECK(c.has_value(), std::string("unknown record column ") + column);
  return sweep::column_value(r, *c);
}

/// Grouping key over every axis except the ones in `skip` (plus the
/// workload identity column). Derived from the axis registry so a new axis
/// automatically partitions the trend groups.
std::string group_key(const sweep::SweepRecord& r,
                      std::initializer_list<std::string_view> skip) {
  std::string key = r.workload;
  for (const char* column : {
#define IW_AXIS_NAME(field, Type, flag, column, default_) column,
           IW_SWEEP_AXES(IW_AXIS_NAME)
#undef IW_AXIS_NAME
       }) {
    if (std::find(skip.begin(), skip.end(), column) != skip.end()) continue;
    key += '|';
    key += column_text(r, column);
  }
  return key;
}

void check_sanity(OracleReport& report, const sweep::SweepRecord& r) {
  const struct {
    const char* column;
    double value;
  } non_negative[] = {
      {"v_up_ranks_per_sec", r.v_up_ranks_per_sec},
      {"v_down_ranks_per_sec", r.v_down_ranks_per_sec},
      {"v_eq2_ranks_per_sec", r.v_eq2_ranks_per_sec},
      {"decay_up_us_per_rank", r.decay_up_us_per_rank},
      {"front_rmse_up_us", r.front_rmse_up_us},
      {"cycle_us", r.cycle_us},
      {"makespan_ms", r.makespan_ms},
  };
  for (const auto& [column, value] : non_negative)
    if (!std::isfinite(value) || value < 0.0)
      violate(report, r.index, "sanity", column, value, 0.0,
              "observable must be finite and non-negative");
  if (!std::isfinite(r.front_r2_up) || r.front_r2_up < 0.0 ||
      r.front_r2_up > 1.0 + 1e-9)
    violate(report, r.index, "sanity", "front_r2_up", r.front_r2_up, 1.0,
            "r^2 must lie in [0, 1]");
  for (const auto& [column, hops] :
       {std::pair{"survival_up_hops", r.survival_up_hops},
        std::pair{"survival_down_hops", r.survival_down_hops}})
    if (hops < 0 || hops > r.np - 1)
      violate(report, r.index, "sanity", column, hops, r.np - 1,
              "survival must lie in [0, np-1]");
}

void check_expansion(OracleReport& report, const sweep::SweepRecord& r,
                     const sweep::SweepPoint* point) {
  if (point == nullptr) {
    violate(report, r.index, "expansion", "index",
            static_cast<double>(r.index), 0.0,
            "record index beyond the scenario's expanded points");
    return;
  }
  // The identity/axis columns must match what re-expanding the catalog spec
  // yields — a mismatch means the corpus was built from a drifted catalog.
  // Both the expectation and the column list come from the axis registry.
  sweep::SweepRecord expect;
  expect.index = point->index;
#define IW_AXIS_EXPECT(field, Type, flag, column, default_) \
  expect.field = sweep::AxisValue<Type>::to_record(point->field);
  IW_SWEEP_AXES(IW_AXIS_EXPECT)
#undef IW_AXIS_EXPECT
  expect.workload = to_string(point->workload);
  expect.seed = point->exp.cluster.seed;
  for (const char* column : {
#define IW_AXIS_NAME(field, Type, flag, column, default_) column,
           IW_SWEEP_AXES(IW_AXIS_NAME)
#undef IW_AXIS_NAME
           "workload", "seed"}) {
    const std::size_t c = *sweep::column_index(column);
    const std::string want = sweep::column_value(expect, c);
    const std::string got = sweep::column_value(r, c);
    if (want != got)
      violate(report, r.index, "expansion", column, 0.0, 0.0,
              "catalog re-expansion yields '" + want + "', record holds '" +
                  got + "'");
  }
  if (r.protocol != expected_protocol(*point))
    violate(report, r.index, "expansion", "protocol", 0.0, 0.0,
            "transport size rule demands '" +
                std::string(expected_protocol(*point)) + "', record holds '" +
                r.protocol + "'");
}

void check_speed(OracleReport& report, const sweep::OracleBounds& bounds,
                 const sweep::SweepRecord& r) {
  // Only the upward fit carries quality columns (front_r2_up /
  // front_rmse_up_us), so only v_up faces the Eq. 2 comparison; a
  // scattered downward fit with no r^2 gate of its own would produce
  // false violations. v_down stays covered by the sanity checks and the
  // exact golden diff.
  if (r.delay_ms <= 0.0 || r.v_eq2_ranks_per_sec <= 0.0) return;
  if (r.front_r2_up < bounds.min_front_r2) return;  // fit too scattered
  if (r.v_up_ranks_per_sec <= 0.0 ||
      r.survival_up_hops < bounds.min_reached_for_speed)
    return;
  ++report.speed_checks;
  const double rel_err =
      std::abs(r.v_up_ranks_per_sec - r.v_eq2_ranks_per_sec) /
      r.v_eq2_ranks_per_sec;
  if (rel_err > bounds.max_speed_rel_err)
    violate(report, r.index, "speed_eq2", "v_up_ranks_per_sec", rel_err,
            bounds.max_speed_rel_err,
            "fitted speed deviates from the Eq. 2 v_silent prediction");
}

void check_cycle(OracleReport& report, const sweep::OracleBounds& bounds,
                 double texec_us, const sweep::SweepRecord& r) {
  if (r.cycle_us <= 0.0) {
    violate(report, r.index, "cycle_eq1", "cycle_us", r.cycle_us, 0.0,
            "no measured steady-state cycle");
    return;
  }
  const double lo = bounds.min_cycle_over_texec * texec_us;
  const double hi = bounds.max_cycle_over_texec * texec_us;
  // 2% grace below the Texec floor: the median-of-step-lengths estimator
  // can dip marginally under Texec when noise shifts step markers.
  if (r.cycle_us < lo * 0.98 || r.cycle_us > hi)
    violate(report, r.index, "cycle_eq1", "cycle_us", r.cycle_us,
            r.cycle_us < lo * 0.98 ? lo : hi,
            "Eq. 1 cycle = Texec + Tcomm must lie in [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "] us");
}

void check_damping_trends(OracleReport& report,
                          const sweep::OracleBounds& bounds,
                          const std::vector<sweep::SweepRecord>& records) {
  // Group by every axis except noise E.
  std::map<std::string, std::vector<const sweep::SweepRecord*>> groups;
  for (const sweep::SweepRecord& r : records)
    groups[group_key(r, {"noise_E_percent"})].push_back(&r);
  for (auto& [key, group] : groups) {
    if (group.size() < 2) continue;
    std::sort(group.begin(), group.end(),
              [](const auto* a, const auto* b) {
                return a->noise_E_percent < b->noise_E_percent;
              });
    // Exponential noise with mean E% of Texec lengthens the average compute
    // phase by exactly that mean: cycle(E) must be monotone in E.
    for (std::size_t i = 1; i < group.size(); ++i) {
      const double prev = group[i - 1]->cycle_us;
      const double floor = prev * (1.0 - bounds.cycle_noise_slack_rel);
      if (group[i]->cycle_us < floor)
        violate(report, group[i]->index, "cycle_monotone", "cycle_us",
                group[i]->cycle_us, floor,
                "cycle shrank under rising noise E (vs " + csv_num(prev) +
                    " us at E=" + csv_num(group[i - 1]->noise_E_percent) +
                    "%)");
    }
    // Damping endpoint: the strongest noise must not let the wave travel
    // farther than the noise-free run.
    const sweep::SweepRecord& lo = *group.front();
    const sweep::SweepRecord& hi = *group.back();
    if (hi.survival_up_hops >
        lo.survival_up_hops + bounds.survival_slack_hops)
      violate(report, hi.index, "survival_damping", "survival_up_hops",
              hi.survival_up_hops,
              lo.survival_up_hops + bounds.survival_slack_hops,
              "survival at E=" + csv_num(hi.noise_E_percent) +
                  "% exceeds the E=" + csv_num(lo.noise_E_percent) +
                  "% baseline (damping violated)");
  }
}

/// Loosest-to-tightest order of a resource-constraint axis: 0 means
/// unlimited, then larger budgets are looser than smaller ones.
double constraint_tightness(double value) {
  return value == 0.0 ? -std::numeric_limits<double>::infinity() : -value;
}

void check_constraint_trends(OracleReport& report,
                             const sweep::OracleBounds& bounds,
                             const std::vector<sweep::SweepRecord>& records) {
  const std::string& axis = bounds.constraint_axis;
  const auto value_of = [&axis](const sweep::SweepRecord& r) {
    return std::stod(column_text(r, axis.c_str()));
  };

  // Tightening the constraint must never speed the run up, with all other
  // axes fixed.
  std::map<std::string, std::vector<const sweep::SweepRecord*>> groups;
  for (const sweep::SweepRecord& r : records)
    groups[group_key(r, {axis})].push_back(&r);
  for (auto& [key, group] : groups) {
    if (group.size() < 2) continue;
    std::sort(group.begin(), group.end(),
              [&](const auto* a, const auto* b) {
                return constraint_tightness(value_of(*a)) <
                       constraint_tightness(value_of(*b));
              });
    for (std::size_t i = 1; i < group.size(); ++i) {
      const double prev = group[i - 1]->cycle_us;
      const double floor = prev * (1.0 - bounds.constraint_cycle_slack_rel);
      if (group[i]->cycle_us < floor)
        violate(report, group[i]->index, "constraint_monotone", "cycle_us",
                group[i]->cycle_us, floor,
                "cycle shrank as " + axis + " tightened to " +
                    csv_num(value_of(*group[i])) + " (vs " +
                    csv_num(prev) + " us at " + axis + "=" +
                    csv_num(value_of(*group[i - 1])) + ")");
    }
  }

  // Crossover-shift direction: eager senders couple to the constrained
  // resource (deferred local completion / demotion), rendezvous senders
  // already wait out handshakes — so between the unconstrained baseline and
  // the tightest setting, eager must slow down at least as much.
  std::map<std::string, std::vector<const sweep::SweepRecord*>> panels;
  for (const sweep::SweepRecord& r : records)
    panels[group_key(r, {axis, "msg_bytes"})].push_back(&r);
  for (auto& [key, panel] : panels) {
    double loosest = std::numeric_limits<double>::infinity();
    double tightest = -std::numeric_limits<double>::infinity();
    for (const auto* r : panel) {
      loosest = std::min(loosest, constraint_tightness(value_of(*r)));
      tightest = std::max(tightest, constraint_tightness(value_of(*r)));
    }
    if (loosest == tightest) continue;
    double slowdown[2] = {0.0, 0.0};  // [eager, rendezvous]
    std::uint64_t witness = 0;
    bool complete = true;
    for (int p = 0; p < 2; ++p) {
      const std::string proto = p == 0 ? "eager" : "rendezvous";
      std::vector<double> base, tight;
      for (const auto* r : panel) {
        if (r->protocol != proto || r->cycle_us <= 0.0) continue;
        const double t = constraint_tightness(value_of(*r));
        if (t == loosest) base.push_back(r->cycle_us);
        if (t == tightest) tight.push_back(r->cycle_us);
        if (p == 0 && t == tightest) witness = r->index;
      }
      if (base.empty() || tight.empty()) {
        complete = false;
        break;
      }
      slowdown[p] = median(tight) / median(base);
    }
    if (!complete) continue;
    if (slowdown[0] < slowdown[1] - bounds.crossover_shift_slack)
      violate(report, witness, "crossover_shift", "cycle_us", slowdown[0],
              slowdown[1] - bounds.crossover_shift_slack,
              "tightening " + axis + " slowed eager by x" +
                  csv_num(slowdown[0]) + " but rendezvous by x" +
                  csv_num(slowdown[1]) +
                  " — the crossover moved the wrong way");
  }
}

}  // namespace

OracleReport check_oracles(const sweep::Scenario& scenario,
                           const std::vector<sweep::SweepRecord>& records) {
  OracleReport report;
  report.records_checked = records.size();

  const auto points = sweep::expand(scenario.spec);
  std::unordered_map<std::uint64_t, const sweep::SweepPoint*> by_index;
  by_index.reserve(points.size());
  for (const sweep::SweepPoint& p : points) by_index[p.index] = &p;

  const double texec_us = scenario.spec.texec.us();
  for (const sweep::SweepRecord& r : records) {
    check_sanity(report, r);
    const auto it = by_index.find(r.index);
    check_expansion(report, r, it == by_index.end() ? nullptr : it->second);
    check_speed(report, scenario.oracle, r);
    check_cycle(report, scenario.oracle, texec_us, r);
  }
  if (scenario.oracle.damping_trend_in_noise)
    check_damping_trends(report, scenario.oracle, records);
  if (!scenario.oracle.constraint_axis.empty())
    check_constraint_trends(report, scenario.oracle, records);
  return report;
}

}  // namespace iw::verify
