#include "verify/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

namespace iw::verify {
namespace {

bool approx_equal(double a, double b, const TolerancePolicy& policy,
                  double* rel_err) {
  if (std::isnan(a) || std::isnan(b)) {  // NaN never verifies
    *rel_err = 1.0;
    return false;
  }
  const double mag = std::max(std::abs(a), std::abs(b));
  const double delta = std::abs(a - b);
  *rel_err = mag > 0.0 ? delta / mag : 0.0;
  return delta <= policy.abs_eps + policy.rel_eps * mag;
}

}  // namespace

DiffReport diff_records(const std::vector<sweep::SweepRecord>& golden,
                        const std::vector<sweep::SweepRecord>& fresh,
                        const TolerancePolicy& policy, bool expect_full) {
  DiffReport report;
  const auto& schema = sweep::record_schema();

  std::unordered_map<std::uint64_t, const sweep::SweepRecord*> by_index;
  by_index.reserve(golden.size());
  for (const sweep::SweepRecord& g : golden) {
    if (!by_index.emplace(g.index, &g).second)
      report.structural.push_back("golden has duplicate index " +
                                  std::to_string(g.index));
  }

  std::size_t matched = 0;
  for (const sweep::SweepRecord& f : fresh) {
    const auto it = by_index.find(f.index);
    if (it == by_index.end()) {
      report.structural.push_back("fresh record index " +
                                  std::to_string(f.index) +
                                  " has no golden row");
      continue;
    }
    if (it->second == nullptr) {
      report.structural.push_back("fresh run repeats index " +
                                  std::to_string(f.index));
      continue;
    }
    const sweep::SweepRecord& g = *it->second;
    it->second = nullptr;  // mark consumed (and catch duplicate fresh rows)
    ++matched;

    for (std::size_t c = 0; c < schema.size(); ++c) {
      const std::string want = sweep::column_value(g, c);
      const std::string got = sweep::column_value(f, c);
      double rel_err = 1.0;
      bool ok;
      if (schema[c].tolerance == sweep::ColumnTolerance::exact ||
          schema[c].type == sweep::ColumnType::text) {
        ok = want == got;
      } else {
        ok = approx_equal(std::strtod(want.c_str(), nullptr),
                          std::strtod(got.c_str(), nullptr), policy, &rel_err);
      }
      if (!ok)
        report.field_diffs.push_back(
            {f.index, schema[c].name, want, got, rel_err});
    }
  }
  report.records_compared = matched;

  if (expect_full) {
    for (const auto& [index, record] : by_index)
      if (record != nullptr)
        report.structural.push_back("golden index " + std::to_string(index) +
                                    " was not produced by the fresh run");
    std::sort(report.structural.begin(), report.structural.end());
  }
  return report;
}

}  // namespace iw::verify
