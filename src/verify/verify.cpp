#include "verify/verify.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "support/csv.hpp"
#include "sweep/runner.hpp"

namespace iw::verify {
namespace {

/// Expands the scenario and (quick mode) thins to the declared subset.
std::vector<sweep::SweepPoint> points_for(const sweep::Scenario& scenario,
                                          bool quick) {
  std::vector<sweep::SweepPoint> points = sweep::expand(scenario.spec);
  if (!quick || scenario.quick_subset.empty()) return points;
  std::vector<sweep::SweepPoint> subset;
  subset.reserve(scenario.quick_subset.size());
  for (const std::size_t index : scenario.quick_subset) {
    if (index >= points.size())
      throw std::runtime_error("scenario " + scenario.name +
                               ": quick_subset index " +
                               std::to_string(index) + " out of range");
    subset.push_back(points[index]);
  }
  return subset;
}

sweep::CampaignResult run_points(const std::vector<sweep::SweepPoint>& points,
                                 const VerifyOptions& options) {
  sweep::RunnerOptions runner;
  runner.threads = options.threads;
  return sweep::run_campaign(points, runner);
}

bool diff_names(const DiffReport& report, std::uint64_t index,
                const std::string& column) {
  return std::any_of(report.field_diffs.begin(), report.field_diffs.end(),
                     [&](const FieldDiff& d) {
                       return d.record_index == index && d.column == column;
                     });
}

/// Perturbs column `column` of `records[row]` to a value that must exceed
/// every sane tolerance: numeric fields scale-and-shift, text flips.
void perturb(std::vector<sweep::SweepRecord>& records, std::size_t row,
             const std::string& column) {
  const std::size_t c = *sweep::column_index(column);
  sweep::SweepRecord& rec = records[row];
  const std::string old = sweep::column_value(rec, c);
  const auto type = sweep::record_schema()[c].type;
  if (type == sweep::ColumnType::text) {
    sweep::set_column(rec, c, old + "_mutated");
  } else if (type == sweep::ColumnType::f64) {
    const double v = std::stod(old);
    sweep::set_column(rec, c, csv_num(v * 1.01 + 1.0));
  } else if (type == sweep::ColumnType::u64) {
    sweep::set_column(rec, c, std::to_string(std::stoull(old) + 1));
  } else {
    sweep::set_column(rec, c, std::to_string(std::stoll(old) + 1));
  }
}

MutationOutcome run_mutation(const std::string& scenario_name,
                             const std::vector<sweep::SweepRecord>& golden,
                             const std::vector<sweep::SweepRecord>& fresh,
                             const VerifyOptions& options,
                             const std::string& target,
                             const std::string& column) {
  MutationOutcome outcome;
  outcome.target = target;
  outcome.column = column;

  std::vector<sweep::SweepRecord> mut_golden = golden;
  std::vector<sweep::SweepRecord> mut_fresh = fresh;
  if (fresh.empty() || golden.empty()) {
    outcome.detail = "no records to mutate";
    return outcome;
  }
  // Mutate the row corresponding to the middle *fresh* record: in quick
  // mode the fresh run covers a subset of golden indices, and a mutation
  // the differ never compares would be a vacuous probe. Middle rather than
  // first catches differs that only look at edges.
  const std::uint64_t index = fresh[fresh.size() / 2].index;
  outcome.record_index = index;
  auto& mutated = target == "golden" ? mut_golden : mut_fresh;
  const auto row = std::find_if(
      mutated.begin(), mutated.end(),
      [&](const sweep::SweepRecord& r) { return r.index == index; });
  if (row == mutated.end()) {
    outcome.detail = "no " + target + " record with index " +
                     std::to_string(index) + " to mutate";
    return outcome;
  }
  perturb(mutated, static_cast<std::size_t>(row - mutated.begin()), column);

  const DiffReport report =
      diff_records(mut_golden, mut_fresh, options.policy, false);
  outcome.caught = diff_names(report, outcome.record_index, column);
  std::ostringstream os;
  if (outcome.caught)
    os << "differ named scenario '" << scenario_name << "' record "
       << outcome.record_index << " column '" << column << "'";
  else
    os << "differ MISSED the perturbed " << target << " field '" << column
       << "' at record " << outcome.record_index << " (" <<
        report.field_diffs.size() << " unrelated diffs)";
  outcome.detail = os.str();
  return outcome;
}

void self_check(ScenarioVerdict& verdict, const GoldenCorpus& corpus,
                const std::vector<sweep::SweepRecord>& fresh,
                const VerifyOptions& options) {
  // One perturbed golden field per tolerance class, one perturbed sim
  // observable, one perturbed protocol-axis column (schema-v2 coverage):
  // all four must be caught and named.
  verdict.mutations.push_back(run_mutation(verdict.scenario, corpus.records,
                                           fresh, options, "golden",
                                           "v_up_ranks_per_sec"));
  verdict.mutations.push_back(run_mutation(
      verdict.scenario, corpus.records, fresh, options, "golden", "seed"));
  verdict.mutations.push_back(run_mutation(verdict.scenario, corpus.records,
                                           fresh, options, "sim",
                                           "cycle_us"));
  verdict.mutations.push_back(run_mutation(
      verdict.scenario, corpus.records, fresh, options, "golden", "nic_depth"));
}

// ---- JSON rendering -------------------------------------------------------

std::string json_bool(bool b) { return b ? "true" : "false"; }

/// JSON has no NaN/inf literals; a verdict describing a non-finite
/// observable must still parse, so non-finite numbers are emitted as
/// quoted strings ("nan", "inf").
std::string json_num(double v) {
  return std::isfinite(v) ? csv_num(v) : json_str(csv_num(v));
}

void append_diff(std::ostringstream& os, const FieldDiff& d) {
  os << "{\"record_index\":" << d.record_index << ",\"column\":"
     << json_str(d.column) << ",\"expected\":" << json_str(d.expected)
     << ",\"actual\":" << json_str(d.actual) << ",\"rel_err\":"
     << json_num(d.rel_err) << "}";
}

void append_violation(std::ostringstream& os, const OracleViolation& v) {
  os << "{\"record_index\":" << v.record_index << ",\"check\":"
     << json_str(v.check) << ",\"column\":" << json_str(v.column)
     << ",\"value\":" << json_num(v.value) << ",\"bound\":" << json_num(v.bound)
     << ",\"detail\":" << json_str(v.detail) << "}";
}

void append_mutation(std::ostringstream& os, const MutationOutcome& m) {
  os << "{\"target\":" << json_str(m.target) << ",\"column\":"
     << json_str(m.column) << ",\"record_index\":" << m.record_index
     << ",\"caught\":" << json_bool(m.caught) << ",\"detail\":"
     << json_str(m.detail) << "}";
}

template <typename T, typename Fn>
void append_array(std::ostringstream& os, const std::vector<T>& items,
                  Fn append_item) {
  os << '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) os << ',';
    append_item(os, items[i]);
  }
  os << ']';
}

}  // namespace

bool ScenarioVerdict::pass() const {
  if (!error.empty() || !diff.clean() || !oracle.clean()) return false;
  return std::all_of(mutations.begin(), mutations.end(),
                     [](const MutationOutcome& m) { return m.caught; });
}

ScenarioVerdict verify_scenario(const sweep::Scenario& scenario,
                                const VerifyOptions& options) {
  ScenarioVerdict verdict;
  verdict.scenario = scenario.name;
  verdict.golden_file = golden_path(options.golden_dir, scenario.name);
  // Per-phase stopwatch for the verdict's timing block.
  auto mark = std::chrono::steady_clock::now();
  const auto begin = mark;
  const auto lap = [&mark] {
    const auto now = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(now - mark).count();
    mark = now;
    return s;
  };
  try {
    const GoldenCorpus corpus = load_golden(verdict.golden_file);
    if (corpus.scenario != scenario.name)
      throw std::runtime_error("golden corpus is for scenario '" +
                               corpus.scenario + "', expected '" +
                               scenario.name + "'");
    verdict.timing.load = lap();

    const auto points = points_for(scenario, options.quick);
    const sweep::CampaignResult result = run_points(points, options);
    verdict.records_run = result.records.size();
    verdict.seconds = result.seconds;
    verdict.timing.campaign = lap();

    verdict.diff = diff_records(corpus.records, result.records, options.policy,
                                /*expect_full=*/!options.quick);
    verdict.timing.diff = lap();
    verdict.oracle = check_oracles(scenario, result.records);
    verdict.timing.oracle = lap();
    if (options.self_check) {
      self_check(verdict, corpus, result.records, options);
      verdict.timing.self_check = lap();
    }
  } catch (const std::exception& e) {
    verdict.error = e.what();
  }
  verdict.timing.total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  return verdict;
}

std::string update_golden(const sweep::Scenario& scenario,
                          const VerifyOptions& options) {
  const auto points = sweep::expand(scenario.spec);
  const sweep::CampaignResult result = run_points(points, options);
  if (result.records.size() != points.size())
    throw std::runtime_error("scenario " + scenario.name +
                             ": campaign incomplete (" +
                             std::to_string(result.records.size()) + "/" +
                             std::to_string(points.size()) + " points)");
  const std::string path = golden_path(options.golden_dir, scenario.name);
  write_golden(path, scenario.name, result.records);
  return path;
}

std::string verdict_json(const std::vector<ScenarioVerdict>& verdicts) {
  std::ostringstream os;
  // Verdict-document schema v2: per-scenario "timing" phase breakdown.
  os << "{\"schema\":2,\"pass\":" << json_bool(all_pass(verdicts))
     << ",\"scenarios\":[";
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const ScenarioVerdict& v = verdicts[i];
    if (i) os << ',';
    os << "{\"name\":" << json_str(v.scenario) << ",\"golden\":"
       << json_str(v.golden_file) << ",\"pass\":" << json_bool(v.pass())
       << ",\"error\":" << json_str(v.error) << ",\"records_run\":"
       << v.records_run << ",\"seconds\":" << csv_num(v.seconds)
       << ",\"timing\":{\"total_s\":" << json_num(v.timing.total)
       << ",\"load_s\":" << json_num(v.timing.load)
       << ",\"campaign_s\":" << json_num(v.timing.campaign)
       << ",\"diff_s\":" << json_num(v.timing.diff)
       << ",\"oracle_s\":" << json_num(v.timing.oracle)
       << ",\"self_check_s\":" << json_num(v.timing.self_check) << "}"
       << ",\"records_compared\":" << v.diff.records_compared
       << ",\"field_diffs\":";
    append_array(os, v.diff.field_diffs, append_diff);
    os << ",\"structural\":";
    append_array(os, v.diff.structural,
                 [](std::ostringstream& o, const std::string& s) {
                   o << json_str(s);
                 });
    os << ",\"oracle\":{\"records_checked\":" << v.oracle.records_checked
       << ",\"speed_checks\":" << v.oracle.speed_checks << ",\"violations\":";
    append_array(os, v.oracle.violations, append_violation);
    os << "},\"mutations\":";
    append_array(os, v.mutations, append_mutation);
    os << "}";
  }
  os << "]}";
  return os.str();
}

bool all_pass(const std::vector<ScenarioVerdict>& verdicts) {
  return !verdicts.empty() &&
         std::all_of(verdicts.begin(), verdicts.end(),
                     [](const ScenarioVerdict& v) { return v.pass(); });
}

}  // namespace iw::verify
