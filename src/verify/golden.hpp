// Golden-corpus I/O: checked-in reference SweepRecord tables.
//
// One file per scenario under tests/golden/, holding the full campaign's
// records in sink column order. The file is a plain CSV with a
// schema-versioned comment header, so it diffs cleanly in review and loads
// without an external parser:
//
//   # iw-golden schema=1 scenario=speed_vs_delay points=52
//   index,delay_ms,...,peak_events_pending
//   0,4,...,118
//
// Loading validates the header line, the schema version, and that the
// column row matches the *current* record schema exactly — a renamed,
// added, or removed column makes every golden stale by definition and must
// go through --update-goldens, not through silent positional reinterpretation.
#pragma once

#include <string>
#include <vector>

#include "sweep/record.hpp"

namespace iw::verify {

/// Version of the golden file layout + column semantics. Bump when the
/// header format changes or a column changes meaning without renaming.
/// v2: protocol axes (nic_depth, eager_credits, rdv_flavor) join the axis
/// block, eager_demotions joins the observables, and the identity columns
/// settle into registry order (axes before workload/seed).
/// v3: the IW_METRIC_COLUMNS protocol counters (nic_backlogged,
/// deferred_pushes, unexpected_eager, unexpected_rts) join the observables
/// between eager_demotions and the engine-cost columns.
/// v4: the switch_nodes axis joins the axis block, and the fast-forward
/// accounting columns (ffwd_skips, ffwd_time_skipped_us) land after the
/// engine-cost columns.
inline constexpr int kGoldenSchemaVersion = 4;

struct GoldenCorpus {
  int schema_version = kGoldenSchemaVersion;
  std::string scenario;
  std::vector<sweep::SweepRecord> records;
};

/// Canonical corpus path for `scenario` under `dir`.
[[nodiscard]] std::string golden_path(const std::string& dir,
                                      const std::string& scenario);

/// Writes the corpus file. Throws std::runtime_error when the path cannot
/// be opened or a serialized field would require CSV quoting (golden values
/// never legitimately contain commas/quotes/newlines).
void write_golden(const std::string& path, const std::string& scenario,
                  const std::vector<sweep::SweepRecord>& records);

/// Loads and validates a corpus file. Throws std::runtime_error on a
/// missing file, malformed or version-mismatched header, column drift
/// against the current record schema, or an unparsable row.
[[nodiscard]] GoldenCorpus load_golden(const std::string& path);

}  // namespace iw::verify
