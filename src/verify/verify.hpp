// Verification orchestration: campaign -> golden diff -> oracles -> verdict.
//
// verify_scenario() replays a catalog scenario (full or quick subset),
// diffs the fresh records field-by-field against the checked-in golden
// corpus, and runs the analytic oracle layer. The optional mutation
// self-check perturbs one golden field and one fresh sim observable and
// demands the differ names each — so the harness cannot rot into
// always-green: a differ that stops seeing changes fails its own PR.
#pragma once

#include <string>
#include <vector>

#include "sweep/scenario.hpp"
#include "verify/diff.hpp"
#include "verify/golden.hpp"
#include "verify/oracle.hpp"

namespace iw::verify {

struct VerifyOptions {
  std::string golden_dir;  ///< directory holding <scenario>.csv corpora
  bool quick = false;      ///< run only the scenario's quick_subset
  int threads = 1;         ///< campaign worker threads
  TolerancePolicy policy;
  bool self_check = false;  ///< run the mutation self-check as well
};

/// Outcome of one mutation probe: did the differ catch the perturbation?
struct MutationOutcome {
  std::string target;  ///< "golden" or "sim"
  std::string column;
  std::uint64_t record_index = 0;
  bool caught = false;
  std::string detail;  ///< what the differ reported (or failed to)
};

/// Wall-clock timing of one scenario's verification pipeline, per phase
/// [seconds]. Exported in the --json verdict so CI history can tell a
/// slow simulation from a slow harness.
struct VerifyTiming {
  double total = 0.0;       ///< the whole verify_scenario call
  double load = 0.0;        ///< golden-corpus load + parse
  double campaign = 0.0;    ///< fresh re-simulation of the points
  double diff = 0.0;        ///< field-by-field golden diff
  double oracle = 0.0;      ///< analytic oracle checks
  double self_check = 0.0;  ///< mutation probes (0 when not requested)
};

struct ScenarioVerdict {
  std::string scenario;
  std::string golden_file;
  std::string error;  ///< load/run failure; empty on a normal verdict
  std::size_t records_run = 0;
  double seconds = 0.0;  ///< campaign wall-clock (timing.campaign)
  VerifyTiming timing;
  DiffReport diff;
  OracleReport oracle;
  std::vector<MutationOutcome> mutations;

  [[nodiscard]] bool pass() const;
};

/// Verifies one scenario against its golden corpus. Never throws for
/// verification failures — those land in the verdict; infrastructure
/// failures (unreadable corpus, campaign exception) land in `error`.
[[nodiscard]] ScenarioVerdict verify_scenario(const sweep::Scenario& scenario,
                                              const VerifyOptions& options);

/// Runs the full campaign and (re)writes the scenario's golden corpus.
/// Returns the file path written.
std::string update_golden(const sweep::Scenario& scenario,
                          const VerifyOptions& options);

/// Machine-readable verdict over all verified scenarios, one JSON document.
[[nodiscard]] std::string verdict_json(
    const std::vector<ScenarioVerdict>& verdicts);

/// True when every scenario verdict passes.
[[nodiscard]] bool all_pass(const std::vector<ScenarioVerdict>& verdicts);

}  // namespace iw::verify
