// Analytic oracle layer: closed-form expectations checked per record.
//
// The golden corpus pins *reproducibility*; the oracles pin *physics*. Each
// record is recomputed against the analytic model of idle-wave propagation
// (Afzal et al., arXiv:2103.03175):
//   * Eq. 2 velocity: the fitted v_up must sit within the scenario's
//     declared relative-error band of the v_silent prediction, whenever the
//     front fit is clean enough to mean anything (r^2 and survival gates
//     from OracleBounds; v_down carries no fit-quality columns, so it is
//     covered by sanity checks and the golden diff instead);
//   * Eq. 1 cycle structure: the measured cycle_us of a nonoverlapping
//     compute-communicate loop is bounded below by Texec and above by a
//     scenario-declared Tcomm multiple;
//   * damping trends (Sec. V): with all other axes fixed, the measured
//     cycle must grow monotonically with injected noise E and the wave must
//     not outlive its noise-free baseline;
//   * unconditional sanity: speeds/decay non-negative and finite, survival
//     within [0, np-1], protocol consistent with the message size, axis
//     values and seeds identical to re-expanding the scenario spec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/record.hpp"
#include "sweep/scenario.hpp"

namespace iw::verify {

/// One record that violates an analytic expectation.
struct OracleViolation {
  std::uint64_t record_index = 0;
  std::string check;   ///< "speed_eq2", "cycle_eq1", "cycle_monotone", ...
  std::string column;  ///< offending record field
  double value = 0.0;  ///< observed quantity (e.g. relative error)
  double bound = 0.0;  ///< the bound it broke
  std::string detail;  ///< human-readable explanation
};

struct OracleReport {
  std::size_t records_checked = 0;
  std::size_t speed_checks = 0;  ///< records that passed the fit-quality gate
  std::vector<OracleViolation> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
};

/// Checks every record of `records` against `scenario`'s declared bounds.
/// Records may be a subset of the full campaign (quick mode); grouped checks
/// (monotonicity) run over whatever groups the subset contains.
[[nodiscard]] OracleReport check_oracles(
    const sweep::Scenario& scenario,
    const std::vector<sweep::SweepRecord>& records);

}  // namespace iw::verify
