// Field-tolerance diffing of SweepRecord tables against a golden corpus.
//
// Records pair up by their `index` column (a fresh run may be a quick
// subset of the golden campaign), and every schema column is compared under
// its declared tolerance class: `exact` columns (identity, axes, protocol,
// engine counters) must match textually, `approx` columns (fitted
// velocities, decay, cycle, makespan) under a relative-epsilon policy that
// absorbs benign last-digit noise while catching real physics drift.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/record.hpp"

namespace iw::verify {

/// Comparison policy for `approx` columns. A pair (a, b) passes when
/// |a - b| <= abs_eps + rel_eps * max(|a|, |b|). Goldens are stored with 12
/// significant digits, so the defaults sit well above serialization
/// round-off and well below any physical effect.
struct TolerancePolicy {
  double rel_eps = 1e-9;
  double abs_eps = 1e-9;
};

/// One field that differs beyond its tolerance.
struct FieldDiff {
  std::uint64_t record_index = 0;  ///< the records' `index` column
  std::string column;
  std::string expected;  ///< golden value
  std::string actual;    ///< fresh value
  /// |a-b| / max(|a|,|b|) for approx columns; 1 for exact mismatches.
  double rel_err = 0.0;
};

struct DiffReport {
  std::size_t records_compared = 0;
  std::vector<FieldDiff> field_diffs;
  /// Shape problems: fresh records whose index has no golden row, duplicate
  /// indices, or (full runs) golden rows never produced.
  std::vector<std::string> structural;

  [[nodiscard]] bool clean() const {
    return field_diffs.empty() && structural.empty();
  }
};

/// Diffs `fresh` against `golden`. When `expect_full` is set, every golden
/// record must be matched by a fresh one (a full campaign); quick-subset
/// runs pass false and only their indices are required to exist.
[[nodiscard]] DiffReport diff_records(
    const std::vector<sweep::SweepRecord>& golden,
    const std::vector<sweep::SweepRecord>& fresh, const TolerancePolicy& policy,
    bool expect_full);

}  // namespace iw::verify
