#include "verify/golden.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace iw::verify {
namespace {

constexpr char kMagic[] = "# iw-golden";

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("golden corpus " + path + ": " + what);
}

/// Splits one CSV line at commas. Golden fields are never quoted (enforced
/// at write time), so a bare split is exact; a stray quote means the file
/// was not produced by write_golden.
std::vector<std::string> split_row(const std::string& path,
                                   const std::string& line) {
  if (line.find('"') != std::string::npos)
    fail(path, "quoted CSV fields are not part of the golden format");
  std::vector<std::string> fields;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t comma = line.find(',', begin);
    fields.push_back(line.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin));
    if (comma == std::string::npos) return fields;
    begin = comma + 1;
  }
}

/// Parses "key=value" tokens of the header line after the magic prefix.
std::string header_value(const std::string& path, const std::string& header,
                         const std::string& key) {
  const std::string needle = " " + key + "=";
  const std::size_t at = header.find(needle);
  if (at == std::string::npos) fail(path, "header is missing '" + key + "='");
  const std::size_t begin = at + needle.size();
  const std::size_t end = header.find(' ', begin);
  return header.substr(begin, end == std::string::npos ? std::string::npos
                                                       : end - begin);
}

}  // namespace

std::string golden_path(const std::string& dir, const std::string& scenario) {
  return dir + "/" + scenario + ".csv";
}

void write_golden(const std::string& path, const std::string& scenario,
                  const std::vector<sweep::SweepRecord>& records) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open for writing");
  out << kMagic << " schema=" << kGoldenSchemaVersion
      << " scenario=" << scenario << " points=" << records.size() << '\n';

  const auto columns = sweep::record_columns();
  for (std::size_t i = 0; i < columns.size(); ++i)
    out << (i ? "," : "") << columns[i];
  out << '\n';

  for (const sweep::SweepRecord& rec : records) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const std::string value = sweep::column_value(rec, c);
      if (value.find_first_of(",\"\n") != std::string::npos)
        fail(path, "field " + columns[c] + " value '" + value +
                       "' would need CSV quoting");
      out << (c ? "," : "") << value;
    }
    out << '\n';
  }
  if (!out) fail(path, "write failed");
}

GoldenCorpus load_golden(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open (run verify_runner --update-goldens?)");

  GoldenCorpus corpus;
  std::string line;
  if (!std::getline(in, line) || line.rfind(kMagic, 0) != 0)
    fail(path, "missing '# iw-golden' header line");
  try {
    corpus.schema_version = std::stoi(header_value(path, line, "schema"));
  } catch (const std::logic_error&) {
    fail(path, "unparsable schema version");
  }
  if (corpus.schema_version != kGoldenSchemaVersion)
    fail(path, "schema version " + std::to_string(corpus.schema_version) +
                   " != supported " + std::to_string(kGoldenSchemaVersion));
  corpus.scenario = header_value(path, line, "scenario");
  std::size_t declared_points = 0;
  try {
    declared_points = std::stoul(header_value(path, line, "points"));
  } catch (const std::logic_error&) {
    fail(path, "unparsable points count");
  }

  if (!std::getline(in, line)) fail(path, "missing column header row");
  const auto columns = split_row(path, line);
  const auto expected = sweep::record_columns();
  if (columns != expected) {
    std::ostringstream os;
    os << "column drift against the current record schema; golden has "
       << columns.size() << " columns, schema has " << expected.size()
       << " — refresh with --update-goldens";
    fail(path, os.str());
  }

  std::size_t row_no = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++row_no;
    try {
      corpus.records.push_back(sweep::record_from_row(split_row(path, line)));
    } catch (const std::invalid_argument& e) {
      fail(path, "row " + std::to_string(row_no) + ": " + e.what());
    }
  }
  if (corpus.records.size() != declared_points)
    fail(path, "header declares " + std::to_string(declared_points) +
                   " points but file holds " +
                   std::to_string(corpus.records.size()));
  return corpus;
}

}  // namespace iw::verify
