#!/usr/bin/env python3
"""idlewave project lint: structural rules the compiler cannot enforce.

Rules (each line of output is `path:line: [rule] message`):

  banned-construct   std::function / std::unordered_map / std::shared_ptr in
                     the hot-path trees (src/sim/, src/mpi/, src/service/ —
                     the daemon shares the sweep worker pool). These layers
                     were flattened deliberately (PR 1/PR 4): type-erased
                     dispatch, hashing and refcounts on the per-event or
                     per-message path are regressions, not style. Exceptions
                     live in tools/lint/allowlist.txt with a reason.
  source-registration  every src/**/*.cpp appears in src/CMakeLists.txt and
                     vice versa (the library lists sources explicitly; an
                     unlisted file silently never links), and every
                     tests/**/*.cpp contains a TEST macro and produces a
                     unique auto-registered target name.
  include-hygiene    every header under src/ uses `#pragma once` (before any
                     other preprocessor directive) and never an #ifndef
                     include guard — one convention, enforced.
  golden-schema      every tests/golden/*.csv declares the schema-version
                     header `# iw-golden schema=<v> scenario=<stem>
                     points=<n>`, where <stem> matches the filename and <n>
                     matches the data-row count (verify/golden.cpp rejects
                     drift at load time; this catches it at review time).
  transport-config-validate  every field of the TransportConfig policy
                     structs (NicModel, EagerPolicy, RendezvousPolicy in
                     src/mpi/transport_config.hpp) is referenced as
                     `<group>.<field>` inside TransportConfig::validate()
                     (src/mpi/transport_config.cpp) — a knob the validator
                     never looks at is a knob that can silently hold garbage.
  stats-in-registry  every field of Transport::Stats and
                     Transport::PoolStats (src/mpi/transport.hpp) is
                     referenced as `.<field>` in the unified metrics
                     publisher (src/obs/metrics.cpp) — a counter the
                     registry never exports is invisible to every metrics
                     consumer and rots silently.
  soa-hot-structs    the struct-of-arrays hot state (src/mpi/trace.hpp,
                     src/mpi/process.hpp, src/core/cluster.hpp) must never
                     grow a per-rank vector-of-objects: nested vectors,
                     vectors of smart pointers or strings, and node-based
                     containers (deque/list) re-introduce a heap allocation
                     per rank and break the fixed memory-per-rank budget the
                     machine-scale path depends on. Rank state stays flat
                     slabs plus row descriptors.

Exit status: 0 clean, 1 violations found, 2 internal error.

`--self-test` seeds one violation per rule into a temp tree and requires the
runner to flag each (and to stay quiet on a clean miniature tree) — so a
broken rule fails CI instead of rotting into always-green.
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

BANNED = ("std::function", "std::unordered_map", "std::shared_ptr")
HOT_TREES = ("src/sim", "src/mpi", "src/service")
GOLDEN_HEADER = re.compile(
    r"^# iw-golden schema=(\d+) scenario=([A-Za-z0-9_]+) points=(\d+)$")


def strip_comments(text: str) -> str:
    """Removes //, /* */ comments and string/char literals, preserving line
    structure so reported line numbers stay correct."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "str"
                i += 1
                continue
            if c == "'":
                state = "chr"
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        elif state in ("str", "chr"):
            if c == "\\":
                i += 2
                continue
            if (state == "str" and c == '"') or (state == "chr" and c == "'"):
                state = "code"
            elif c == "\n":  # unterminated literal; never valid C++, recover
                state = "code"
                out.append(c)
        i += 1
    return "".join(out)


def load_allowlist(repo: Path) -> set[tuple[str, str]]:
    """(relative path, construct) pairs exempt from banned-construct."""
    allow: set[tuple[str, str]] = set()
    path = repo / "tools" / "lint" / "allowlist.txt"
    if not path.is_file():
        return allow
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise SystemExit(f"allowlist.txt: malformed entry: {raw!r}")
        allow.add((parts[0], parts[1]))
    return allow


def check_banned_constructs(repo: Path) -> list[str]:
    problems = []
    allow = load_allowlist(repo)
    for tree in HOT_TREES:
        for path in sorted((repo / tree).rglob("*")):
            if path.suffix not in (".hpp", ".cpp", ".h"):
                continue
            rel = path.relative_to(repo).as_posix()
            code = strip_comments(path.read_text())
            for lineno, line in enumerate(code.splitlines(), start=1):
                for construct in BANNED:
                    if construct not in line:
                        continue
                    if (rel, construct) in allow:
                        continue
                    problems.append(
                        f"{rel}:{lineno}: [banned-construct] {construct} in a "
                        f"hot-path tree (allowlist: tools/lint/allowlist.txt)")
    return problems


def check_source_registration(repo: Path) -> list[str]:
    problems = []
    cml = repo / "src" / "CMakeLists.txt"
    listed = set(re.findall(r"^\s+([\w/]+\.cpp)$", cml.read_text(), re.M))
    on_disk = {p.relative_to(repo / "src").as_posix()
               for p in (repo / "src").rglob("*.cpp")}
    for missing in sorted(on_disk - listed):
        problems.append(
            f"src/{missing}:1: [source-registration] not listed in "
            f"src/CMakeLists.txt — it will never be linked into the library")
    for stale in sorted(listed - on_disk):
        problems.append(
            f"src/CMakeLists.txt:1: [source-registration] lists src/{stale} "
            f"which does not exist")

    # Tests: the build glob auto-registers every tests/**/*.cpp; require each
    # to actually define tests, and require the path->target transformation
    # (slashes and dots to underscores) to stay collision-free.
    targets: dict[str, str] = {}
    for path in sorted((repo / "tests").rglob("*.cpp")):
        rel = path.relative_to(repo).as_posix()
        text = path.read_text()
        if not re.search(r"\b(TEST|TEST_F|TEST_P|TYPED_TEST)\s*\(", text):
            problems.append(
                f"{rel}:1: [source-registration] contains no TEST macro — it "
                f"builds an executable that exercises nothing")
        target = rel[len("tests/"):].replace("/", "_").replace(".cpp", "")
        if target in targets:
            problems.append(
                f"{rel}:1: [source-registration] auto-registered target name "
                f"'{target}' collides with {targets[target]}")
        else:
            targets[target] = rel
    return problems


def check_include_hygiene(repo: Path) -> list[str]:
    problems = []
    for path in sorted((repo / "src").rglob("*.hpp")):
        rel = path.relative_to(repo).as_posix()
        first_directive = None
        guard_line = None
        for lineno, line in enumerate(
                strip_comments(path.read_text()).splitlines(), start=1):
            stripped = line.strip()
            if not stripped.startswith("#"):
                continue
            if first_directive is None:
                first_directive = (lineno, stripped)
            if re.match(r"#\s*ifndef\s+\w+_(HPP|H)\b", stripped):
                guard_line = lineno
            break_after = False
            if first_directive and guard_line:
                break_after = True
            if break_after:
                break
        if first_directive is None or first_directive[1] != "#pragma once":
            where = first_directive[0] if first_directive else 1
            problems.append(
                f"{rel}:{where}: [include-hygiene] first preprocessor "
                f"directive must be '#pragma once'")
        if guard_line is not None:
            problems.append(
                f"{rel}:{guard_line}: [include-hygiene] #ifndef include "
                f"guard — this repo uses '#pragma once' exclusively")
    return problems


def check_golden_schema(repo: Path) -> list[str]:
    problems = []
    for path in sorted((repo / "tests" / "golden").glob("*.csv")):
        rel = path.relative_to(repo).as_posix()
        lines = path.read_text().splitlines()
        if not lines:
            problems.append(f"{rel}:1: [golden-schema] empty golden file")
            continue
        m = GOLDEN_HEADER.match(lines[0])
        if not m:
            problems.append(
                f"{rel}:1: [golden-schema] first line must be "
                f"'# iw-golden schema=<v> scenario=<name> points=<n>', "
                f"got: {lines[0]!r}")
            continue
        if m.group(2) != path.stem:
            problems.append(
                f"{rel}:1: [golden-schema] scenario '{m.group(2)}' does not "
                f"match filename stem '{path.stem}'")
        data_rows = max(0, len([l for l in lines[1:] if l.strip()]) - 1)
        if int(m.group(3)) != data_rows:
            problems.append(
                f"{rel}:1: [golden-schema] header declares "
                f"points={m.group(3)} but the file holds {data_rows} "
                f"data rows")
    return problems


# (struct name, field prefix inside validate()) for the grouped config.
CONFIG_GROUPS = (
    ("NicModel", "nic"),
    ("EagerPolicy", "eager"),
    ("RendezvousPolicy", "rendezvous"),
)


def struct_body(code: str, name: str, rel: str) -> tuple[int, str]:
    """Returns (first line number, body text) of `struct <name> { ... }`."""
    m = re.search(rf"\bstruct\s+{name}\s*{{", code)
    if not m:
        raise SystemExit(f"{rel}: struct {name} not found")
    depth, i = 1, m.end()
    while i < len(code) and depth:
        depth += {"{": 1, "}": -1}.get(code[i], 0)
        i += 1
    return code.count("\n", 0, m.start()) + 1, code[m.end():i - 1]


def struct_fields(body: str) -> list[str]:
    """Data-member names declared in a struct body (functions excluded)."""
    fields = []
    for raw in body.split(";"):
        decl = raw.split("=")[0].strip()
        if not decl or "(" in decl or "{" in decl:
            continue
        name = decl.split()[-1]
        if name.isidentifier():
            fields.append(name)
    return fields


def check_transport_config_validate(repo: Path) -> list[str]:
    hpp = repo / "src" / "mpi" / "transport_config.hpp"
    cpp = repo / "src" / "mpi" / "transport_config.cpp"
    rel_hpp = hpp.relative_to(repo).as_posix()
    if not hpp.is_file() or not cpp.is_file():
        return [f"{rel_hpp}:1: [transport-config-validate] "
                f"transport_config.{'hpp' if not hpp.is_file() else 'cpp'} "
                f"is missing — the grouped config and its validator must "
                f"exist as a pair"]
    header = strip_comments(hpp.read_text())
    source = strip_comments(cpp.read_text())
    m = re.search(r"TransportConfig::validate\(\)\s*const\s*{", source)
    if not m:
        return [f"{cpp.relative_to(repo).as_posix()}:1: "
                f"[transport-config-validate] TransportConfig::validate() "
                f"definition not found"]
    depth, i = 1, m.end()
    while i < len(source) and depth:
        depth += {"{": 1, "}": -1}.get(source[i], 0)
        i += 1
    body = source[m.end():i - 1]

    problems = []
    for struct, prefix in CONFIG_GROUPS:
        lineno, fields = struct_body(header, struct, rel_hpp)
        for field in struct_fields(fields):
            if f"{prefix}.{field}" not in body:
                problems.append(
                    f"{rel_hpp}:{lineno}: [transport-config-validate] "
                    f"{struct}::{field} is never referenced in "
                    f"TransportConfig::validate() — add a check (or an "
                    f"explicit mention of {prefix}.{field} saying why any "
                    f"value is acceptable)")
    return problems


# Transport stat structs that must surface in the metrics registry.
STATS_STRUCTS = ("Stats", "PoolStats")


def check_stats_in_registry(repo: Path) -> list[str]:
    hpp = repo / "src" / "mpi" / "transport.hpp"
    cpp = repo / "src" / "obs" / "metrics.cpp"
    rel_hpp = hpp.relative_to(repo).as_posix()
    if not hpp.is_file() or not cpp.is_file():
        missing = rel_hpp if not hpp.is_file() else "src/obs/metrics.cpp"
        return [f"{missing}:1: [stats-in-registry] missing — the transport "
                f"stats and the metrics publisher must exist as a pair"]
    header = strip_comments(hpp.read_text())
    source = strip_comments(cpp.read_text())

    problems = []
    for struct in STATS_STRUCTS:
        lineno, body = struct_body(header, struct, rel_hpp)
        for field in struct_fields(body):
            if not re.search(rf"\.\s*{field}\b", source):
                problems.append(
                    f"{rel_hpp}:{lineno}: [stats-in-registry] "
                    f"Transport::{struct}::{field} is never referenced in "
                    f"src/obs/metrics.cpp — publish it into the unified "
                    f"metrics registry (add a MetricId and an add()/set_max() "
                    f"in MetricsRegistry::publish)")
    return problems


SOA_HOT_FILES = (
    "src/mpi/trace.hpp",
    "src/mpi/process.hpp",
    "src/core/cluster.hpp",
)
SOA_BANNED = re.compile(
    r"std::vector\s*<\s*std::\s*"
    r"(vector|unique_ptr|shared_ptr|string|deque|list|map|unordered_map)\b"
    r"|std::(deque|list)\s*<")


def check_soa_hot_structs(repo: Path) -> list[str]:
    """Per-rank vector-of-objects growth in the SoA hot state."""
    problems = []
    for rel in SOA_HOT_FILES:
        path = repo / rel
        if not path.is_file():
            continue
        text = strip_comments(path.read_text())
        for lineno, line in enumerate(text.splitlines(), 1):
            hit = SOA_BANNED.search(line)
            if hit:
                problems.append(
                    f"{rel}:{lineno}: [soa-hot-structs] per-rank "
                    f"vector-of-objects growth ({hit.group(0).strip()}...) in "
                    f"an SoA hot struct — rank state must stay flat slabs "
                    f"plus row descriptors; hoist the nested container into "
                    f"a shared slab or an object pool")
    return problems


RULES = {
    "banned-construct": check_banned_constructs,
    "source-registration": check_source_registration,
    "include-hygiene": check_include_hygiene,
    "golden-schema": check_golden_schema,
    "transport-config-validate": check_transport_config_validate,
    "stats-in-registry": check_stats_in_registry,
    "soa-hot-structs": check_soa_hot_structs,
}


def run_lint(repo: Path) -> list[str]:
    problems: list[str] = []
    for check in RULES.values():
        problems.extend(check(repo))
    return problems


# --------------------------------------------------------------------------
# Self-test: a miniature clean tree must pass; one seeded violation per rule
# must fail with that rule's tag.
# --------------------------------------------------------------------------

CLEAN_HPP = "#pragma once\n\nnamespace iw {}\n"


def make_clean_tree(root: Path) -> None:
    (root / "src" / "sim").mkdir(parents=True)
    (root / "src" / "mpi").mkdir(parents=True)
    (root / "tests" / "golden").mkdir(parents=True)
    (root / "tools" / "lint").mkdir(parents=True)
    (root / "src" / "sim" / "calendar.hpp").write_text(CLEAN_HPP)
    (root / "src" / "sim" / "calendar.cpp").write_text(
        '#include "sim/calendar.hpp"\n'
        "// a comment mentioning std::function must not trip the rule\n"
        'const char* kNote = "std::shared_ptr in a string is fine";\n')
    (root / "src" / "mpi" / "transport_config.hpp").write_text(
        "#pragma once\nnamespace iw::mpi {\n"
        "struct NicModel {\n  int injection_depth = 0;\n};\n"
        "struct EagerPolicy {\n  int credit_window = 0;\n};\n"
        "struct RendezvousPolicy {\n  int flavor = 0;\n};\n"
        "struct TransportConfig {\n  NicModel nic;\n  EagerPolicy eager;\n"
        "  RendezvousPolicy rendezvous;\n  void validate() const;\n};\n}\n")
    (root / "src" / "mpi" / "transport_config.cpp").write_text(
        '#include "mpi/transport_config.hpp"\n'
        "namespace iw::mpi {\n"
        "void TransportConfig::validate() const {\n"
        "  (void)nic.injection_depth;\n"
        "  (void)eager.credit_window;\n"
        "  (void)rendezvous.flavor;\n"
        "}\n}\n")
    (root / "src" / "mpi" / "trace.hpp").write_text(
        "#pragma once\n#include <vector>\nnamespace iw::mpi {\n"
        "class Trace {\n"
        "  std::vector<double> seg_slab_;\n"
        "  std::vector<int> row_offsets_;\n"
        "};\n}\n")
    (root / "src" / "obs").mkdir(parents=True)
    (root / "src" / "mpi" / "transport.hpp").write_text(
        "#pragma once\nnamespace iw::mpi {\n"
        "class Transport {\n public:\n"
        "  struct Stats {\n    unsigned long eager_sends = 0;\n  };\n"
        "  struct PoolStats {\n    unsigned long allocations = 0;\n  };\n"
        "};\n}\n")
    (root / "src" / "obs" / "metrics.cpp").write_text(
        '#include "mpi/transport.hpp"\n'
        "namespace iw::obs {\n"
        "unsigned long publish(const iw::mpi::Transport::Stats& s,\n"
        "                      const iw::mpi::Transport::PoolStats& p) {\n"
        "  return s.eager_sends + p.allocations;\n"
        "}\n}\n")
    (root / "src" / "CMakeLists.txt").write_text(
        "add_library(idlewave STATIC\n  sim/calendar.cpp\n"
        "  mpi/transport_config.cpp\n  obs/metrics.cpp\n)\n")
    (root / "tests" / "sim_test.cpp").write_text(
        "TEST(Mini, Works) {}\n")
    (root / "tests" / "golden" / "mini.csv").write_text(
        "# iw-golden schema=1 scenario=mini points=1\n"
        "index,np\n0,4\n")


def seed_violation(root: Path, rule: str) -> None:
    if rule == "banned-construct":
        (root / "src" / "mpi" / "bad.hpp").write_text(
            "#pragma once\n#include <functional>\n"
            "using Fn = std::function<void()>;\n")
    elif rule == "source-registration":
        (root / "src" / "sim" / "orphan.cpp").write_text("int orphan() { return 1; }\n")
    elif rule == "include-hygiene":
        (root / "src" / "sim" / "guarded.hpp").write_text(
            "#ifndef GUARDED_HPP\n#define GUARDED_HPP\n#endif\n")
    elif rule == "golden-schema":
        (root / "tests" / "golden" / "drift.csv").write_text(
            "# iw-golden schema=1 scenario=drift points=5\nindex,np\n0,4\n")
    elif rule == "transport-config-validate":
        # A new knob lands in the header but validate() never looks at it.
        hpp = root / "src" / "mpi" / "transport_config.hpp"
        hpp.write_text(hpp.read_text().replace(
            "  int injection_depth = 0;\n",
            "  int injection_depth = 0;\n  int unchecked_knob = 7;\n"))
    elif rule == "stats-in-registry":
        # A new stats counter lands in the transport but the metrics
        # publisher never exports it.
        hpp = root / "src" / "mpi" / "transport.hpp"
        hpp.write_text(hpp.read_text().replace(
            "    unsigned long eager_sends = 0;\n",
            "    unsigned long eager_sends = 0;\n"
            "    unsigned long ghost_counter = 0;\n"))
    elif rule == "soa-hot-structs":
        # A per-rank history vector-of-vectors sneaks into the trace SoA.
        hpp = root / "src" / "mpi" / "trace.hpp"
        hpp.write_text(hpp.read_text().replace(
            "  std::vector<double> seg_slab_;\n",
            "  std::vector<double> seg_slab_;\n"
            "  std::vector<std::vector<double>> per_rank_history_;\n"))
    else:
        raise AssertionError(f"no seeder for rule {rule}")


def self_test() -> int:
    failures = []
    with tempfile.TemporaryDirectory(prefix="iw-lint-selftest-") as tmp:
        clean = Path(tmp) / "clean"
        clean.mkdir()
        make_clean_tree(clean)
        baseline = run_lint(clean)
        if baseline:
            failures.append(
                "clean miniature tree reported problems:\n  "
                + "\n  ".join(baseline))
        for rule in RULES:
            tree = Path(tmp) / rule
            tree.mkdir()
            make_clean_tree(tree)
            seed_violation(tree, rule)
            found = run_lint(tree)
            if not any(f"[{rule}]" in p for p in found):
                failures.append(
                    f"seeded {rule} violation was not flagged "
                    f"(got: {found or 'nothing'})")
    if failures:
        print("lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"lint self-test OK: {len(RULES)} rules each caught their "
          f"seeded violation and stayed quiet on a clean tree")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo", type=Path,
        default=Path(__file__).resolve().parent.parent.parent,
        help="repository root (default: two directories up from this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule catches a seeded violation")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    if args.self_test:
        return self_test()

    problems = run_lint(args.repo)
    for p in problems:
        print(p)
    if problems:
        print(f"\nlint: {len(problems)} problem(s) found", file=sys.stderr)
        return 1
    print(f"lint: clean ({len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SystemExit:
        raise
    except Exception as exc:  # internal error: distinct exit code
        print(f"lint: internal error: {exc}", file=sys.stderr)
        sys.exit(2)
