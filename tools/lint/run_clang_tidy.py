#!/usr/bin/env python3
"""clang-tidy driver with a zero-NEW-warnings gate.

Runs clang-tidy (profile: .clang-tidy at the repo root) over every
translation unit of the idlewave library using the compilation database
exported by CMake, normalizes the diagnostics to stable fingerprints
(`path:check-name` — line numbers shift too easily to key on), and compares
them against the checked-in baseline tools/lint/clang_tidy_baseline.txt:

  * a diagnostic whose fingerprint is NOT in the baseline fails the run
    (exit 1) — new warnings are blocked;
  * baseline fingerprints that no longer occur are reported so the baseline
    can be shrunk (never grown) in the same PR that fixes them;
  * --update-baseline rewrites the baseline from the current state.

The baseline starts (and should stay) empty: it exists so that adopting a
newer clang-tidy with new checks blocks the *new* findings without
reverting the gate wholesale.

Exit status: 0 clean, 1 new warnings, 2 environment error (no clang-tidy,
no compile_commands.json).
"""

from __future__ import annotations

import argparse
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
BASELINE = REPO / "tools" / "lint" / "clang_tidy_baseline.txt"
DIAG = re.compile(r"^(?P<path>[^:\s]+):(?P<line>\d+):\d+: warning: .* "
                  r"\[(?P<check>[\w.,-]+)\]$")


def load_baseline() -> set[str]:
    if not BASELINE.is_file():
        return set()
    return {line.strip() for line in BASELINE.read_text().splitlines()
            if line.strip() and not line.startswith("#")}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=Path, default=REPO / "build",
                        help="build tree containing compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="(reserved) parallelism; runs serially today")
    args = parser.parse_args()

    if shutil.which(args.clang_tidy) is None:
        print(f"run_clang_tidy: {args.clang_tidy} not found on PATH "
              f"(CI installs it; locally: use a clang toolchain)",
              file=sys.stderr)
        return 2
    cdb = args.build_dir / "compile_commands.json"
    if not cdb.is_file():
        print(f"run_clang_tidy: {cdb} missing — configure with CMake first "
              f"(CMAKE_EXPORT_COMPILE_COMMANDS is ON by default)",
              file=sys.stderr)
        return 2

    entries = json.loads(cdb.read_text())
    sources = sorted({e["file"] for e in entries
                      if "/src/" in e["file"].replace("\\", "/")
                      and e["file"].endswith(".cpp")})
    if not sources:
        print("run_clang_tidy: no src/ translation units in the database",
              file=sys.stderr)
        return 2

    fingerprints: set[str] = set()
    lines_by_fp: dict[str, list[str]] = {}
    for src in sources:
        proc = subprocess.run(
            [args.clang_tidy, "-p", str(args.build_dir), "--quiet",
             # GCC-only flags in the database (e.g. -Wno-psabi) are not
             # errors worth failing the gate over.
             "--extra-arg=-Wno-unknown-warning-option", src],
            capture_output=True, text=True)
        for line in proc.stdout.splitlines():
            m = DIAG.match(line.strip())
            if not m:
                continue
            try:
                rel = Path(m.group("path")).resolve().relative_to(REPO)
            except ValueError:
                continue  # diagnostics from system/third-party headers
            for check in m.group("check").split(","):
                fp = f"{rel.as_posix()}:{check}"
                fingerprints.add(fp)
                lines_by_fp.setdefault(fp, []).append(line.strip())

    if args.update_baseline:
        body = "\n".join(sorted(fingerprints))
        BASELINE.write_text(
            "# clang-tidy baseline: fingerprints (path:check) of accepted\n"
            "# pre-existing diagnostics. Shrink this file, never grow it —\n"
            "# new warnings must be fixed, not pinned.\n" + body +
            ("\n" if body else ""))
        print(f"baseline updated: {len(fingerprints)} fingerprint(s)")
        return 0

    baseline = load_baseline()
    new = sorted(fingerprints - baseline)
    fixed = sorted(baseline - fingerprints)
    for fp in new:
        for line in lines_by_fp[fp]:
            print(line)
    if fixed:
        print(f"note: {len(fixed)} baseline fingerprint(s) no longer occur; "
              f"shrink tools/lint/clang_tidy_baseline.txt:", file=sys.stderr)
        for fp in fixed:
            print(f"  {fp}", file=sys.stderr)
    if new:
        print(f"\nrun_clang_tidy: {len(new)} NEW warning fingerprint(s) "
              f"(zero-new-warnings gate)", file=sys.stderr)
        return 1
    print(f"run_clang_tidy: clean over {len(sources)} TU(s) "
          f"({len(baseline)} baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
