#!/usr/bin/env python3
"""Structural validator for idlewave Chrome-trace exports (stdlib only).

Checks the invariants the exporter (src/core/trace_io.cpp,
write_chrome_trace) promises, so CI can verify a traced run end-to-end
without a human loading the file into chrome://tracing:

  * the document is a JSON object with a `traceEvents` list, and every
    event carries a known phase (`X` complete, `i` instant, `s`/`f` flow,
    `M` metadata);
  * per track (pid, tid), timestamps are monotone non-decreasing in file
    order (metadata events are out-of-band and exempt);
  * complete events have a non-negative `dur`;
  * every flow id pairs exactly one `s` with exactly one `f` of the same
    name, with ts(s) <= ts(f);
  * every flow arrow is anchored to recorded protocol events: the `s` leg
    coincides (same tid and ts) with a protocol instant of the pair's send
    kind, the `f` leg with one of its recv kind — e.g. an "eager" arrow
    must sit on an `eager_send` instant and land on an `eager_recv`
    instant; and for sender->receiver pairs the anchoring instants must
    name each other's rank as `args.peer` (the begin/end rank pair of the
    arrow matches a recorded send/recv).

Usage: validate_chrome_trace.py TRACE.json [--quiet]
Exit status: 0 valid, 1 violations found, 2 unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

# Flow-arrow name -> (send instant name, recv instant name, mirrored).
# Mirrored pairs record the arrival from the receiving rank's perspective,
# so the two anchoring instants must name each other via args.peer; the
# RDMA-get pair records both ends on the issuing rank and is exempt.
FLOW_PAIRS = {
    "eager": ("eager_send", "eager_recv", True),
    "rts": ("rts_send", "rts_recv", True),
    "cts": ("cts_send", "cts_recv", True),
    "push": ("push_send", "push_recv", True),
    "get": ("get_send", "get_recv", False),
    "fin": ("fin_send", "fin_recv", True),
}

KNOWN_PHASES = {"X", "i", "s", "f", "M"}


def validate(doc) -> list[str]:
    errors: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document is not an object with a 'traceEvents' list"]
    events = doc["traceEvents"]

    # (tid, ts, name) -> peers of the protocol instants recorded there.
    instants: dict[tuple, list] = defaultdict(list)
    flows: dict = defaultdict(list)  # id -> [(ph, event index, event), ...]
    last_ts: dict[tuple, float] = {}

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue  # metadata: no timestamp, out-of-band
        if "ts" not in ev or "tid" not in ev:
            errors.append(f"event {i} (ph={ph}): missing ts or tid")
            continue
        ts = float(ev["ts"])
        track = (ev.get("pid", 0), ev["tid"])
        if track in last_ts and ts < last_ts[track]:
            errors.append(
                f"event {i} ({ev.get('name')!r}): ts {ts} goes backwards on "
                f"track pid={track[0]} tid={track[1]} (previous {last_ts[track]})")
        last_ts[track] = ts

        if ph == "X":
            if float(ev.get("dur", -1)) < 0:
                errors.append(
                    f"event {i} ({ev.get('name')!r}): complete event without "
                    f"a non-negative dur")
        elif ph == "i":
            if ev.get("cat") == "protocol":
                peer = ev.get("args", {}).get("peer")
                instants[(ev["tid"], ts, ev.get("name"))].append(peer)
        else:  # s / f
            if "id" not in ev:
                errors.append(f"event {i} (ph={ph}): flow event without id")
                continue
            flows[ev["id"]].append((ph, i, ev))

    for flow_id, legs in sorted(flows.items(), key=lambda kv: str(kv[0])):
        phases = sorted(leg[0] for leg in legs)
        if phases != ["f", "s"]:
            errors.append(
                f"flow id {flow_id}: expected exactly one 's' and one 'f', "
                f"got phases {phases}")
            continue
        (_, si, s_ev), (_, fi, f_ev) = sorted(legs, reverse=True)  # s then f
        name = s_ev.get("name")
        if f_ev.get("name") != name:
            errors.append(
                f"flow id {flow_id}: 's' name {name!r} != 'f' name "
                f"{f_ev.get('name')!r}")
            continue
        if name not in FLOW_PAIRS:
            errors.append(f"flow id {flow_id}: unknown flow kind {name!r}")
            continue
        s_ts, f_ts = float(s_ev["ts"]), float(f_ev["ts"])
        if s_ts > f_ts:
            errors.append(
                f"flow id {flow_id} ({name}): starts at {s_ts} after it "
                f"finishes at {f_ts}")
        send_name, recv_name, mirrored = FLOW_PAIRS[name]
        send_peers = instants.get((s_ev["tid"], s_ts, send_name))
        recv_peers = instants.get((f_ev["tid"], f_ts, recv_name))
        if send_peers is None:
            errors.append(
                f"flow id {flow_id} ({name}): no {send_name!r} instant at "
                f"tid={s_ev['tid']} ts={s_ev['ts']} anchors the arrow start")
        if recv_peers is None:
            errors.append(
                f"flow id {flow_id} ({name}): no {recv_name!r} instant at "
                f"tid={f_ev['tid']} ts={f_ev['ts']} anchors the arrow end")
        if mirrored and send_peers is not None and recv_peers is not None:
            if f_ev["tid"] not in send_peers:
                errors.append(
                    f"flow id {flow_id} ({name}): the {send_name!r} instant "
                    f"at tid={s_ev['tid']} never names receiver "
                    f"{f_ev['tid']} as its peer")
            if s_ev["tid"] not in recv_peers:
                errors.append(
                    f"flow id {flow_id} ({name}): the {recv_name!r} instant "
                    f"at tid={f_ev['tid']} never names sender "
                    f"{s_ev['tid']} as its peer")

    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome-trace JSON file to validate")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line on success")
    args = parser.parse_args()

    try:
        with open(args.trace) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{args.trace}: unreadable: {exc}", file=sys.stderr)
        return 2

    errors = validate(doc)
    if errors:
        for e in errors:
            print(f"{args.trace}: {e}", file=sys.stderr)
        print(f"{args.trace}: INVALID ({len(errors)} problem(s))",
              file=sys.stderr)
        return 1
    if not args.quiet:
        events = doc["traceEvents"]
        n_flow = sum(1 for e in events if e.get("ph") == "s")
        tracks = {(e.get("pid", 0), e.get("tid"))
                  for e in events if e.get("ph") not in (None, "M")}
        print(f"{args.trace}: valid Chrome trace — {len(events)} events, "
              f"{len(tracks)} tracks, {n_flow} flow arrows")
    return 0


if __name__ == "__main__":
    sys.exit(main())
